"""Determinism and zero-cost guarantees of the observability subsystem.

Two properties hold together (DESIGN.md §6): with a session attached,
same-seed runs export byte-identical trace and metrics files; without a
subscriber, the bus dispatches nothing and the simulation is identical
event-for-event to an instrumented run.
"""

import filecmp

from repro.campaign.engine import run_campaign
from repro.campaign.spec import CampaignConfig
from repro.condor.pool import Pool, PoolConfig
from repro.harness.workloads import WorkloadSpec, make_workload
from repro.obs.export import ObservationSession, dump_json, render_metrics, render_trace
from repro.sim.rng import RngRegistry


def _small_run(seed: int = 0):
    """A tiny clean workload: 3 jobs on 2 machines."""
    pool = Pool(PoolConfig(n_machines=2, seed=seed))
    jobs = make_workload(
        WorkloadSpec(n_jobs=3, io_fraction=0.0, exception_fraction=0.0,
                     exit_code_fraction=0.0),
        RngRegistry(seed).stream("obs-test"),
    )
    for job in jobs:
        pool.submit(job)
    pool.run_until_done(max_time=50_000)
    return pool


def _observed_run(seed: int = 0):
    with ObservationSession() as session:
        pool = _small_run(seed)
    return pool, session


class TestByteIdentity:
    def test_same_seed_trace_is_byte_identical(self):
        _, a = _observed_run(seed=0)
        _, b = _observed_run(seed=0)
        trace_a = render_trace(a.events, a.spans.spans)
        trace_b = render_trace(b.events, b.spans.spans)
        assert trace_a and trace_a == trace_b

    def test_same_seed_metrics_are_byte_identical(self):
        _, a = _observed_run(seed=0)
        _, b = _observed_run(seed=0)
        text_a = render_metrics(a.registry)
        assert len(a.events) > 0 and text_a == render_metrics(b.registry)

    def test_exported_files_are_byte_identical(self, tmp_path):
        paths = []
        for tag in ("a", "b"):
            trace = tmp_path / f"trace_{tag}.jsonl"
            metrics = tmp_path / f"metrics_{tag}.json"
            with ObservationSession(trace_path=str(trace),
                                    metrics_path=str(metrics)):
                _small_run(seed=0)
            paths.append((trace, metrics))
        (trace_a, metrics_a), (trace_b, metrics_b) = paths
        assert trace_a.stat().st_size > 0
        assert filecmp.cmp(trace_a, trace_b, shallow=False)
        assert filecmp.cmp(metrics_a, metrics_b, shallow=False)

    def test_trace_carries_no_wall_clock_fields(self):
        _, session = _observed_run(seed=0)
        trace = render_trace(session.events, session.spans.spans)
        for field in ("wall_clock_seconds", "seed_seconds", "wall_seconds"):
            assert field not in trace


class TestZeroCost:
    def test_unobserved_run_dispatches_nothing(self):
        pool = _small_run(seed=0)
        assert not pool.bus.active
        assert pool.bus.dispatched == 0
        assert pool.sim.telemetry is pool.bus

    def test_instrumentation_does_not_perturb_the_simulation(self):
        """The observed run schedules exactly the same events (same final
        sequence number, same clock, same user log) as the bare run --
        emission sites must not branch the simulation."""
        bare = _small_run(seed=0)
        observed, session = _observed_run(seed=0)
        assert session.bus.dispatched > 0
        assert observed.sim._seq == bare.sim._seq
        assert observed.sim.now == bare.sim.now
        assert observed.userlog.render() == bare.userlog.render()

    def test_ambient_bus_cleared_after_session(self):
        _observed_run(seed=0)
        pool = Pool(PoolConfig(n_machines=1, seed=0))
        assert not pool.bus.active


class TestCampaignDeterminism:
    """The campaign layer inherits the byte-identity contract: every cell
    is self-seeding and the ParallelRunner merge preserves matrix order,
    so fanning cells out over worker processes must not change a byte of
    the JSON report."""

    CONFIG = CampaignConfig(
        mode="classic",
        kinds=("MisconfiguredJvm", "CredentialExpiry", "CorruptProgramImage"),
        windows=((0.0, None),),
    )

    def test_parallel_report_is_byte_identical_to_serial(self, tmp_path):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        dump_json(str(serial), run_campaign(self.CONFIG, jobs=1))
        dump_json(str(parallel), run_campaign(self.CONFIG, jobs=4))
        assert serial.stat().st_size > 0
        assert filecmp.cmp(serial, parallel, shallow=False)

    def test_same_seed_reports_are_equal_in_process(self):
        assert run_campaign(self.CONFIG, jobs=1) == run_campaign(self.CONFIG, jobs=1)
