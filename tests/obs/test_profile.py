"""Tests for the deterministic grid profiler (repro.obs.profile)."""

import filecmp

from repro.condor.pool import Pool, PoolConfig
from repro.harness.workloads import WorkloadSpec, make_workload
from repro.obs.bus import TelemetryBus, Topic
from repro.obs.export import ObservationSession
from repro.obs.profile import (
    PROFILE_SCHEMA,
    SimTimeProfiler,
    WallCounters,
    clear_wall,
    critical_path,
    folded_stacks,
    install_wall,
    installed_wall,
    profile_report,
    render_profile,
)
from repro.obs.span import Span
from repro.sim.rng import RngRegistry


def _pool_run(seed: int = 0, n_jobs: int = 3):
    pool = Pool(PoolConfig(n_machines=2, seed=seed))
    jobs = make_workload(
        WorkloadSpec(n_jobs=n_jobs, io_fraction=0.0, exception_fraction=0.0,
                     exit_code_fraction=0.0),
        RngRegistry(seed).stream("profile-test"),
    )
    for job in jobs:
        pool.submit(job)
    pool.run_until_done(max_time=50_000)
    return pool


class TestSimTimeAttribution:
    def test_interval_charged_to_earlier_event(self):
        """Time between events belongs to whatever ran *before* it."""
        bus = TelemetryBus()
        profiler = SimTimeProfiler(bus)
        bus.emit(0.0, Topic.DAEMON, "negotiation_cycle")
        bus.emit(4.0, Topic.DAEMON, "match_made", job="j1")
        bus.emit(10.0, Topic.FAULT, "armed")
        profiler.detach()
        assert profiler.sim_time[("matchmaker", "-", "-")] == 10.0
        assert ("injector", "-", "-") not in profiler.sim_time

    def test_job_phase_state_machine(self):
        bus = TelemetryBus()
        profiler = SimTimeProfiler(bus)
        bus.emit(0.0, Topic.JOB, "submit", job="j1")
        bus.emit(5.0, Topic.JOB, "match", job="j1")
        bus.emit(6.0, Topic.JOB, "execute", job="j1")
        bus.emit(9.0, Topic.JOB, "result", job="j1")
        profiler.detach()
        snap = profiler.snapshot()
        by_triple = {
            (r["daemon"], r["phase"], r["scope"]): r["sim_time"]
            for r in snap["triples"]
        }
        assert by_triple[("schedd", "queued", "-")] == 5.0
        assert by_triple[("schedd", "claim", "-")] == 1.0
        assert by_triple[("schedd", "attempt", "-")] == 3.0
        # The terminal event pops the job's phase state.
        assert profiler._job_phase == {}

    def test_requeue_after_site_failure_returns_to_queued(self):
        bus = TelemetryBus()
        profiler = SimTimeProfiler(bus)
        bus.emit(0.0, Topic.JOB, "submit", job="j1")
        bus.emit(1.0, Topic.JOB, "match", job="j1")
        bus.emit(2.0, Topic.JOB, "site_failed", job="j1")
        bus.emit(8.0, Topic.JOB, "match", job="j1")
        profiler.detach()
        # queued carries 0->1 (post-submit) and 2->8 (post-requeue).
        queued = profiler.sim_time[("schedd", "queued", "-")]
        assert queued == 7.0

    def test_daemon_resolution_by_topic(self):
        bus = TelemetryBus()
        profiler = SimTimeProfiler(bus)
        bus.emit(0.0, Topic.PROCESS, "start", process="chirp:exec0")
        bus.emit(0.0, Topic.PROCESS, "start", process="ioserver-1")
        bus.emit(0.0, Topic.IO, "op", channel="rpc")
        bus.emit(0.0, Topic.ERROR, "hop", manager="shadow", scope="PROCESS")
        bus.emit(0.0, Topic.FAULT, "armed")
        profiler.detach()
        daemons = {r["daemon"] for r in profiler.snapshot()["triples"]}
        assert {"chirp", "remoteio", "rpc", "shadow", "injector"} <= daemons
        scopes = {r["scope"] for r in profiler.snapshot()["triples"]}
        assert "PROCESS" in scopes

    def test_snapshot_sorted_heaviest_first(self):
        bus = TelemetryBus()
        profiler = SimTimeProfiler(bus)
        bus.emit(0.0, Topic.FAULT, "armed")
        bus.emit(1.0, Topic.DAEMON, "negotiation_cycle")
        bus.emit(100.0, Topic.FAULT, "disarmed")
        profiler.detach()
        triples = profiler.snapshot()["triples"]
        assert triples[0]["daemon"] == "matchmaker"  # carries the 99s gap
        assert triples[0]["sim_time"] == 99.0

    def test_profiler_sees_a_real_pool_run(self):
        bus_events_before = 0
        with ObservationSession() as session:
            _pool_run(seed=0)
        snap = session.profiler.snapshot()
        assert snap["events"] > bus_events_before
        assert snap["sim_time"] > 0
        assert any(r["daemon"] == "matchmaker" for r in snap["triples"])


class TestCriticalPath:
    def _spans(self):
        return [
            Span(1, None, "job:1", "job", 0.0, 20.0, status="completed"),
            Span(2, 1, "queued", "phase", 0.0, 12.0),
            Span(3, 1, "attempt:1", "phase", 12.0, 20.0),
            Span(4, None, "job:2", "job", 0.0, 8.0, status="completed"),
            Span(5, 4, "queued", "phase", 0.0, 2.0),
            Span(6, 4, "attempt:1", "phase", 2.0, 8.0),
            Span(7, None, "error:1", "error", 3.0, 7.0, status="reported",
                 attrs={"scope": "JOB"}),
        ]

    def test_critical_job_is_latest_ending(self):
        cp = critical_path(self._spans())
        assert cp["critical_job"] == "job:1"
        assert cp["makespan"] == 20.0
        assert [hop["phase"] for hop in cp["path"]] == ["queued", "attempt:1"]

    def test_dominant_phase_per_job(self):
        cp = critical_path(self._spans())
        by_job = {row["job"]: row for row in cp["jobs"]}
        assert by_job["job:1"]["dominant_phase"] == "queued"
        assert by_job["job:1"]["dominant_share"] == 12.0 / 20.0
        assert by_job["job:2"]["dominant_phase"] == "attempt:1"

    def test_error_journeys_summarised(self):
        cp = critical_path(self._spans())
        assert cp["error_journeys"] == 1
        assert cp["slowest_error_journey"]["scope"] == "JOB"
        assert cp["slowest_error_journey"]["duration"] == 4.0

    def test_empty_span_set(self):
        cp = critical_path([])
        assert cp["critical_job"] is None
        assert cp["makespan"] == 0.0
        assert cp["path"] == []

    def test_open_spans_are_excluded(self):
        spans = [Span(1, None, "job:1", "job", 0.0, None)]
        assert critical_path(spans)["critical_job"] is None


class TestFoldedStacks:
    def test_folded_lines_are_micros_and_sorted(self):
        spans = [
            Span(1, None, "job:1", "job", 0.0, 10.0),
            Span(2, 1, "queued", "phase", 0.0, 4.0),
            Span(3, 1, "attempt:1", "phase", 4.0, 10.0),
        ]
        lines = folded_stacks(spans)
        assert lines == sorted(lines)
        assert "job:1;attempt:1 6000000" in lines
        assert "job:1;queued 4000000" in lines

    def test_residual_root_time_stays_on_root(self):
        spans = [
            Span(1, None, "job:1", "job", 0.0, 10.0),
            Span(2, 1, "queued", "phase", 0.0, 4.0),
        ]
        assert "job:1 6000000" in folded_stacks(spans)


class TestWallCounters:
    def test_add_tracks_calls_total_min_max(self):
        wall = WallCounters()
        wall.add("x", 10)
        wall.add("x", 30)
        snap = wall.snapshot()
        assert snap["x"]["calls"] == 2
        assert snap["x"]["total_seconds"] == 40 / 1e9
        assert snap["x"]["min_seconds"] == 10 / 1e9
        assert snap["x"]["max_seconds"] == 30 / 1e9

    def test_install_and_clear(self):
        import repro.chirp.proxy as proxy
        import repro.condor.classads.ad as ad
        import repro.condor.classads.parser as parser_mod
        import repro.remoteio.server as rio
        import repro.sim.engine as engine

        wall = WallCounters()
        install_wall(wall)
        try:
            for mod in (engine, ad, parser_mod, proxy, rio):
                assert mod.WALL_PROFILE is wall
            assert installed_wall() is wall
        finally:
            clear_wall()
        for mod in (engine, ad, parser_mod, proxy, rio):
            assert mod.WALL_PROFILE is None
        assert installed_wall() is None

    def test_uninstalled_run_pays_nothing_and_counts_when_installed(self):
        import repro.sim.engine as engine

        assert engine.WALL_PROFILE is None
        _pool_run(seed=0)  # no counters installed: hook stays None
        assert engine.WALL_PROFILE is None
        wall = WallCounters()
        install_wall(wall)
        try:
            _pool_run(seed=0)
        finally:
            clear_wall()
        assert wall.counters["sim.process_step"][0] > 0
        assert "classads.match" in wall.counters
        assert "classads.parse" in wall.counters

    def test_wall_does_not_perturb_the_simulation(self):
        bare = _pool_run(seed=0)
        wall = WallCounters()
        install_wall(wall)
        try:
            timed = _pool_run(seed=0)
        finally:
            clear_wall()
        assert timed.sim.now == bare.sim.now
        assert timed.sim._seq == bare.sim._seq


class TestProfileReport:
    def test_schema_and_sections(self):
        with ObservationSession() as session:
            _pool_run(seed=0)
        report = session.profile_report()
        assert report["schema"] == PROFILE_SCHEMA
        assert set(report) == {"schema", "sim", "critical_path", "folded", "wall"}
        assert report["critical_path"]["critical_job"] is not None
        assert report["folded"]

    def test_same_seed_report_identical_after_wall_strip(self):
        from repro.bench.compare import strip_wall

        reports = []
        for _ in range(2):
            with ObservationSession(profile=True) as session:
                _pool_run(seed=0)
            reports.append(session.profile_report())
        assert strip_wall(reports[0]) == strip_wall(reports[1])
        # Wall counters were live (profile=True), so the raw reports
        # carry measurement that the strip removed.
        assert reports[0]["wall"] is not None

    def test_profile_file_byte_identical(self, tmp_path):
        paths = []
        for tag in ("a", "b"):
            path = tmp_path / f"profile_{tag}.json"
            with ObservationSession(profile_path=str(path)):
                _pool_run(seed=0)
            paths.append(path)
        text = paths[0].read_text()
        assert '"schema"' in text
        # Wall counters live under the one "wall" key; scrub both files
        # the same way compare does and require byte identity.
        import json

        from repro.bench.compare import strip_wall

        a = strip_wall(json.loads(paths[0].read_text()))
        b = strip_wall(json.loads(paths[1].read_text()))
        assert a == b

    def test_render_profile_smoke(self):
        with ObservationSession(profile=True) as session:
            _pool_run(seed=0)
        text = render_profile(session.profile_report())
        assert "where time went" in text
        assert "critical path" in text
        assert "wall-time counters" in text

    def test_render_profile_empty_report(self):
        bus = TelemetryBus()
        profiler = SimTimeProfiler(bus)
        profiler.detach()
        text = render_profile(profile_report(profiler, []))
        assert "(no events)" in text


class TestSessionFlushDeterminism:
    def test_trace_and_profile_files_byte_identical(self, tmp_path):
        """The profiler rides the same session plumbing as --trace."""
        pairs = []
        for tag in ("a", "b"):
            trace = tmp_path / f"t_{tag}.jsonl"
            with ObservationSession(trace_path=str(trace)):
                _pool_run(seed=0)
            pairs.append(trace)
        assert filecmp.cmp(pairs[0], pairs[1], shallow=False)
