"""Edge cases for the grid console, and histogram percentiles."""

from repro.condor.pool import Pool, PoolConfig
from repro.faults import FaultInjector
from repro.faults.faults import MachineCrash
from repro.obs.bus import TelemetryBus
from repro.obs.console import GridConsole
from repro.obs.metrics import MetricsRegistry


class TestPercentiles:
    def test_nearest_rank_on_1_to_100(self):
        registry = MetricsRegistry()
        for v in range(1, 101):
            registry.histogram("latency", float(v))
        assert registry.histogram_percentile("latency", 50) == 50.0
        assert registry.histogram_percentile("latency", 95) == 95.0
        assert registry.histogram_percentile("latency", 99) == 99.0

    def test_percentile_is_an_observed_value(self):
        registry = MetricsRegistry()
        for v in (1.0, 100.0):
            registry.histogram("latency", v)
        # Nearest rank never interpolates: rank ceil(0.5*2)=1 -> 1.0.
        assert registry.histogram_percentile("latency", 50) == 1.0
        assert registry.histogram_percentile("latency", 99) == 100.0

    def test_single_observation(self):
        registry = MetricsRegistry()
        registry.histogram("latency", 7.0)
        for q in (50, 95, 99):
            assert registry.histogram_percentile("latency", q) == 7.0

    def test_absent_series_is_none(self):
        assert MetricsRegistry().histogram_percentile("nope", 50) is None

    def test_snapshot_carries_percentile_fields(self):
        registry = MetricsRegistry()
        for v in range(1, 21):
            registry.histogram("latency", float(v))
        snap = registry.snapshot()["histograms"]["latency"]
        assert snap["p50"] == 10.0
        assert snap["p95"] == 19.0
        assert snap["p99"] == 20.0

    def test_empty_histogram_percentiles_are_none(self):
        registry = MetricsRegistry()
        registry.histogram("latency", 1.0)
        registry._histograms.clear()
        registry.histogram("empty_check", 1.0)
        key = next(iter(registry._histograms.values()))
        key.values.clear()
        key.count = 0
        assert key.snapshot()["p50"] is None


class TestConsoleEdgeCases:
    def _run_empty_pool(self, seed=0):
        """A run with zero jobs: daemons heartbeat, nothing else happens."""
        pool = Pool(PoolConfig(n_machines=2, seed=seed))
        console = GridConsole(pool.bus)
        pool.sim.run(until=50.0)
        console.detach()
        return console

    def test_empty_run_renders_without_crashing(self):
        console = self._run_empty_pool()
        text = console.render()
        assert "grid console" in text
        assert "jobs" in text
        # No jobs ever ran: the makespan footer must not appear.
        assert "makespan" not in text

    def test_empty_run_output_is_stable(self):
        a = self._run_empty_pool(seed=0).render()
        b = self._run_empty_pool(seed=0).render()
        assert a == b

    def _run_fault_only_pool(self, seed=0):
        """Faults armed and fired with no workload submitted."""
        pool = Pool(PoolConfig(n_machines=2, seed=seed))
        console = GridConsole(pool.bus)
        injector = FaultInjector(pool)
        site = sorted(pool.machines)[0]
        injector.schedule(MachineCrash(site), at=5.0, until=20.0)
        pool.sim.run(until=60.0)
        console.detach()
        return console

    def test_fault_only_run_renders_without_crashing(self):
        console = self._run_fault_only_pool()
        text = console.render()
        assert "grid console" in text
        assert console.counts  # the injector's events were folded in

    def test_fault_only_run_output_is_stable(self):
        a = self._run_fault_only_pool(seed=0).render()
        b = self._run_fault_only_pool(seed=0).render()
        assert a == b

    def test_where_time_went_panel_appears_with_events(self):
        bus = TelemetryBus()
        console = GridConsole(bus)
        bus.emit(0.0, "job", "submit", job="1.0")
        bus.emit(5.0, "job", "result", job="1.0")
        console.detach()
        text = console.render()
        assert "where time went" in text
        assert "makespan p50=5.0s p95=5.0s p99=5.0s" in text

    def test_truly_empty_console_renders(self):
        console = GridConsole(TelemetryBus())
        assert "(no events)" in console.render()
