"""Span assembly over real pool runs, and the FIG3 live cross-check."""

from collections import defaultdict

from repro.analysis.journeys import journeys
from repro.condor.job import JobState
from repro.condor.pool import Pool, PoolConfig
from repro.core.propagation import EventType
from repro.faults import FaultInjector, MisconfiguredJvm
from repro.harness.workloads import WorkloadSpec, make_workload
from repro.obs.export import ObservationSession
from repro.sim.rng import RngRegistry


def _run_pool(seed: int = 0, n_jobs: int = 3, fault: bool = False):
    pool = Pool(PoolConfig(n_machines=2, seed=seed))
    if fault:
        FaultInjector(pool).schedule(MisconfiguredJvm("exec000"))
    jobs = make_workload(
        WorkloadSpec(n_jobs=n_jobs, io_fraction=0.0, exception_fraction=0.0,
                     exit_code_fraction=0.0),
        RngRegistry(seed).stream("obs-test"),
    )
    for job in jobs:
        pool.submit(job)
    pool.run_until_done(max_time=50_000)
    return pool, jobs


class TestJobSpans:
    def test_clean_run_assembles_one_root_per_job(self):
        with ObservationSession() as session:
            _, jobs = _run_pool(seed=0)
        roots = session.spans.job_spans()
        assert len(roots) == len(jobs)
        for root in roots:
            assert not root.open
            assert root.status == "completed"

    def test_phases_follow_the_lifecycle(self):
        with ObservationSession() as session:
            _run_pool(seed=0, n_jobs=1)
        root = session.spans.job_spans()[0]
        phases = [s for s in session.spans.spans
                  if s.kind == "phase" and s.parent_id == root.span_id]
        names = [p.name for p in phases]
        assert names[0] == "queued"
        assert "claim" in names and "attempt:1" in names
        assert all(not p.open for p in phases)
        # Phases tile the root interval: contiguous, in order.
        for earlier, later in zip(phases, phases[1:]):
            assert earlier.end == later.start
        assert phases[0].start == root.start
        assert phases[-1].end == root.end

    def test_faulty_run_grows_retry_phases(self):
        with ObservationSession() as session:
            _, jobs = _run_pool(seed=0, n_jobs=2, fault=True)
        assert all(j.state is JobState.COMPLETED for j in jobs)
        retried = [s for s in session.spans.spans if s.name == "attempt:2"]
        assert retried, "the misconfigured JVM should force a second attempt"


class TestErrorSpans:
    def test_error_journeys_have_hops_and_terminals(self):
        with ObservationSession() as session:
            _run_pool(seed=0, fault=True)
        errors = session.spans.journeys()
        assert errors
        hops_by_parent = defaultdict(list)
        for span in session.spans.spans:
            if span.kind == "hop":
                hops_by_parent[span.parent_id].append(span)
        for journey in errors:
            hops = hops_by_parent[journey.span_id]
            assert hops and hops[0].name == "hop:discovered"
            assert not journey.open
            assert f"hop:{journey.status}" == hops[-1].name

    def test_scope_to_handlers_matches_posthoc_analysis(self):
        """The live (span-stream) FIG3 map equals analysis/journeys.py's
        post-hoc reconstruction, restricted to masked/reported terminals
        (``Journey.handler`` also counts mishandled deliveries)."""
        with ObservationSession() as session:
            pool, _ = _run_pool(seed=0, fault=True)
        posthoc: dict[str, set[str]] = defaultdict(set)
        for journey in journeys(pool.trace):
            terminal = journey.terminal_event
            if terminal is not None and terminal.event in (
                EventType.MASKED, EventType.REPORTED
            ):
                posthoc[journey.scope.name].add(terminal.manager)
        live = session.spans.scope_to_handlers()
        assert live == dict(posthoc)
        # The misconfigured JVM is a remote-resource error; Figure 3 says
        # the shadow masks it (retry elsewhere).
        assert live["REMOTE_RESOURCE"] == {"shadow"}

    def test_detached_builder_accrues_nothing(self):
        with ObservationSession() as session:
            _run_pool(seed=0, n_jobs=1)
        session.spans.detach()
        before = len(session.spans.spans)
        session.bus.emit(99.0, "job", "submit", job="9.0")
        assert len(session.spans.spans) == before
