"""Unit tests for the telemetry bus, metrics registry, and console."""

from repro.obs.bus import (
    TelemetryBus,
    TelemetryEvent,
    Topic,
    ambient_bus,
    clear_ambient,
    install_ambient,
)
from repro.obs.console import GridConsole
from repro.obs.metrics import BusMetricsRecorder, MetricsRegistry


class TestTelemetryBus:
    def test_inactive_bus_is_a_no_op(self):
        bus = TelemetryBus()
        assert not bus.active
        bus.emit(1.0, "job", "submit", job="1.0")
        assert bus.dispatched == 0

    def test_subscribe_delivers_in_order(self):
        bus = TelemetryBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit(1.0, Topic.JOB, "submit", job="1.0")
        bus.emit(2.0, "error", "discovered", scope="JOB")
        assert [e.name for e in seen] == ["submit", "discovered"]
        assert seen[0].topic is Topic.JOB
        assert seen[1].topic is Topic.ERROR
        assert bus.dispatched == 2

    def test_attrs_sorted_regardless_of_kwarg_order(self):
        bus = TelemetryBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit(0.0, "io", "op", zebra=1, alpha=2)
        assert seen[0].attrs == (("alpha", 2), ("zebra", 1))
        assert seen[0].attr("zebra") == 1
        assert seen[0].attr("missing", "d") == "d"

    def test_topic_filtered_subscription(self):
        bus = TelemetryBus()
        jobs, everything = [], []
        bus.subscribe(jobs.append, topic=Topic.JOB)
        bus.subscribe(everything.append)
        bus.emit(0.0, "job", "submit", job="1.0")
        bus.emit(0.0, "daemon", "match_made")
        assert [e.name for e in jobs] == ["submit"]
        assert [e.name for e in everything] == ["submit", "match_made"]

    def test_unsubscribe_deactivates(self):
        bus = TelemetryBus()
        unsub = bus.subscribe(lambda e: None)
        assert bus.active
        unsub()
        assert not bus.active
        bus.emit(0.0, "job", "submit")
        assert bus.dispatched == 0

    def test_ambient_install_and_clear(self):
        bus = TelemetryBus()
        install_ambient(bus)
        try:
            assert ambient_bus() is bus
        finally:
            clear_ambient()
        fresh = ambient_bus()
        assert fresh is not bus and not fresh.active

    def test_event_str_is_readable(self):
        event = TelemetryEvent(1.5, Topic.ERROR, "masked", (("scope", "JOB"),))
        assert "t=1.500" in str(event) and "masked" in str(event)


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", op="read")
        reg.counter("ops_total", 2, op="read")
        reg.counter("ops_total", op="write")
        reg.gauge("t", 4.5)
        assert reg.counter_value("ops_total", op="read") == 3
        assert reg.counter_value("ops_total", op="write") == 1
        assert reg.counter_value("ops_total", op="stat") == 0
        assert reg.gauge_value("t") == 4.5
        snap = reg.snapshot()
        assert snap["counters"] == {"ops_total{op=read}": 3, "ops_total{op=write}": 1}
        assert snap["gauges"] == {"t": 4.5}

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        for v in (0.005, 0.005, 0.5, 50.0):
            reg.histogram("lat", v, buckets=(0.01, 1.0, 10.0))
        hist = reg.snapshot()["histograms"]["lat"]
        assert hist["count"] == 4
        assert hist["sum"] == 50.51
        assert hist["buckets"] == {
            "le=0.01": 2, "le=1": 3, "le=10": 3, "le=+Inf": 4,
        }

    def test_snapshot_sorted_and_stable(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x", op="b")
        a.counter("x", op="a")
        b.counter("x", op="a")
        b.counter("x", op="b")
        assert a.snapshot() == b.snapshot()
        assert list(a.snapshot()["counters"]) == ["x{op=a}", "x{op=b}"]

    def test_bus_recorder_standard_families(self):
        bus = TelemetryBus()
        recorder = BusMetricsRecorder(bus)
        bus.emit(1.0, "job", "submit", job="1.0")
        bus.emit(2.0, "error", "masked", scope="REMOTE_RESOURCE")
        bus.emit(3.0, "io", "chirp_op", channel="chirp", op="read", bytes=64)
        bus.emit(4.0, "fault", "arm")
        reg = recorder.registry
        assert reg.counter_value("events_total", topic="job") == 1
        assert reg.counter_value("job_events_total", event="submit") == 1
        assert reg.counter_value(
            "error_hops_total", hop="masked", scope="REMOTE_RESOURCE"
        ) == 1
        assert reg.counter_value("io_ops_total", channel="chirp", op="read") == 1
        assert reg.counter_value("fault_events_total", event="arm") == 1
        assert reg.gauge_value("sim_time_seconds") == 4.0


class TestGridConsole:
    def test_render_accumulated_state(self):
        bus = TelemetryBus()
        console = GridConsole(bus)
        bus.emit(0.0, "job", "submit", job="1.0")
        bus.emit(1.0, "job", "execute", job="1.0", site="exec000")
        bus.emit(2.0, "job", "result", job="1.0")
        bus.emit(2.0, "job", "submit", job="1.1")
        bus.emit(3.0, "error", "reported", scope="JOB", manager="schedd")
        text = console.render()
        assert "grid console @ t=3.0" in text
        assert "completed" in text and "idle" in text
        assert "JOB" in text and "recent events:" in text

    def test_render_empty(self):
        console = GridConsole(TelemetryBus())
        assert "(no events)" in console.render()

    def test_detach_stops_updates(self):
        bus = TelemetryBus()
        console = GridConsole(bus)
        console.detach()
        assert not bus.active
        bus.emit(1.0, "job", "submit", job="1.0")
        assert console.counts == {}
