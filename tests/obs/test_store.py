"""The longitudinal results store: ingest, query, trend, diff, gc.

Covers the contract DESIGN.md §3.6f states: every artifact schema the
reproduction emits round-trips through ``ingest``; deterministic
payloads are stored wall-stripped so ``query --strip-wall`` output is
byte-identical whether the source run was serial or fanned out over
``--jobs``; the store reopens and appends; malformed artifacts are
rejected with structured errors, never half-ingested.
"""

import json

import pytest

from repro.campaign.engine import run_campaign
from repro.campaign.spec import CampaignConfig
from repro.obs.store import (
    IngestError,
    ResultsStore,
    canonical_json,
    config_hash,
)
from repro.obs.store.__main__ import main as store_main

BENCH_RECORD = {
    "schema": "repro-bench/1",
    "bench": "toy",
    "rounds_override": None,
    "cases": {
        "case_a": {
            "ok": True,
            "deterministic": True,
            "iterations": 2,
            "rounds": 1,
            "error": None,
            "wall_seconds": {"min": 0.25, "max": 0.25, "mean": 0.25,
                             "per_round": [0.25]},
            "sim": {"events": 10, "sim_time": 5.0, "triples": [], "top": [
                {"daemon": "schedd", "phase": "match", "scope": "-",
                 "events": 10, "sim_time": 5.0},
            ]},
            "histograms": {},
            "critical_path": [],
            "folded": ["schedd;match 5.0"],
        }
    },
}

FUZZ_REPORT = {
    "format": "repro-campaign-fuzz/1",
    "campaign": {"mode": "scoped", "seed": 3},
    "fuzz": {"budget_cells": 4, "batch_size": 2, "order_max": 3},
    "cells": [
        {
            "cell": "scoped/3/x", "mode": "scoped", "seed": 3, "injections": [],
            "jobs": {"total": 4, "completed": 3, "held": 1, "unfinished": 0},
            "makespan": 41.5, "violations": [
                {"principle": 1, "subject": "job-2", "description": "lost"},
            ],
            "live_violations": [], "live_matches_posthoc": False,
            "profile": None, "error": None,
        },
    ],
    "totals": {
        "cells": 1, "cells_with_violations": 1, "violations": 1,
        "by_principle": {"P1": 1, "P2": 0, "P3": 0, "P4": 0},
        "live_mismatches": 1, "errors": 0, "features": 7, "corpus": 3,
        "distinct_violations": 1, "batches": 2, "max_minimal_order": 1,
    },
    "violations": {"signatures": {}, "first_violation_at": 1,
                   "all_principles_at": None},
    "reproducers": [],
}

HARNESS_PAYLOAD = {
    "seed": 5,
    "experiments": {
        "fig_x": {"completed": 9, "held": 1, "label": "x"},
    },
}

TRACE_JSONL = "\n".join([
    json.dumps({"kind": "event", "topic": "job", "name": "submit",
                "time": 1.0, "attrs": {"job": "j1"}}),
    json.dumps({"kind": "event", "topic": "error", "name": "hop",
                "time": 2.0, "attrs": {"scope": "JOB"}}),
    json.dumps({"kind": "span", "name": "match", "start": 1.0, "end": 2.0}),
])


def campaign_report(jobs=1):
    config = CampaignConfig(mode="scoped", seed=1, kinds=("MachineCrash",))
    return run_campaign(config, jobs=jobs, shrink=False)


class TestIngestRoundTrip:
    """Every artifact schema in, the same deterministic payload out."""

    def test_bench_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path / "r.db")
        run_id = store.ingest_obj(BENCH_RECORD, source="BENCH_toy.json",
                                  commit="aaa")
        row = store.runs()[0]
        assert (row["kind"], row["schema"]) == ("bench", "repro-bench/1")
        payload = store.payload(run_id)
        # Stored wall-stripped: sim side intact, wall keys gone.
        assert payload["cases"]["case_a"]["sim"]["events"] == 10
        assert "wall_seconds" not in payload["cases"]["case_a"]
        # ... but the wall time still lands in a wall-flagged metric row.
        assert ("wall_seconds", "toy:case_a") in store.wall_metrics("aaa")
        store.close()

    def test_campaign_round_trip(self, tmp_path):
        report = campaign_report()
        store = ResultsStore(tmp_path / "r.db")
        run_id = store.ingest_obj(report, source="campaign.json", commit="aaa")
        row = store.runs(kind="campaign")[0]
        assert row["schema"] == "repro-campaign/1"
        assert row["seed"] == report["campaign"]["seed"]
        assert store.payload(run_id) == report  # campaign reports carry no wall
        matrix = store.matrix()
        assert len(matrix["cells"]) == len(report["cells"])
        store.close()

    def test_fuzz_round_trip_with_violations(self, tmp_path):
        store = ResultsStore(tmp_path / "r.db")
        store.ingest_obj(FUZZ_REPORT, source="fuzz.json", commit="bbb")
        row = store.runs(kind="fuzz")[0]
        assert row["schema"] == "repro-campaign-fuzz/1"
        assert store.violation_count() == 1
        cells = store.matrix()["cells"]
        assert cells[0]["violations"] == 1
        store.close()

    def test_harness_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path / "r.db")
        run_id = store.ingest_obj(HARNESS_PAYLOAD, source="harness:fig_x",
                                  commit="ccc")
        row = store.runs(kind="harness")[0]
        assert row["seed"] == 5
        assert store.payload(run_id) == HARNESS_PAYLOAD
        # Scalar numeric experiment fields become queryable metrics.
        trend = store.trend("completed")
        assert trend["series"]["fig_x"] == [9]
        store.close()

    def test_trace_metrics_profile_kinds(self, tmp_path):
        store = ResultsStore(tmp_path / "r.db")
        store.ingest_text(TRACE_JSONL, source="t.jsonl", commit="ddd")
        row = store.runs(kind="trace")[0]
        assert row["schema"] == "repro-trace/1"
        assert store.error_hops()["JOB"] == 1
        store.close()


class TestStripWallByteIdentity:
    """The determinism contract: serial and --jobs 4 source runs store
    byte-identical deterministic payloads, and the CLI's --strip-wall
    query output is byte-identical too."""

    @pytest.fixture(scope="class")
    def reports(self):
        return campaign_report(jobs=1), campaign_report(jobs=4)

    def test_payloads_byte_identical(self, tmp_path, reports):
        serial, fanned = reports
        a = ResultsStore(tmp_path / "serial.db")
        b = ResultsStore(tmp_path / "jobs4.db")
        ra = a.ingest_obj(serial, source="campaign.json", commit="s")
        rb = b.ingest_obj(fanned, source="campaign.json", commit="j")
        assert canonical_json(a.payload(ra)) == canonical_json(b.payload(rb))
        a.close()
        b.close()

    def test_query_strip_wall_output_identical(self, tmp_path, reports, capsys):
        serial, fanned = reports
        outputs = []
        for name, report in (("serial", serial), ("jobs4", fanned)):
            db = str(tmp_path / f"{name}.db")
            store = ResultsStore(db, now=lambda: 1000.0 if name == "serial" else 2000.0)
            store.ingest_obj(report, source="campaign.json", commit=name)
            store.close()
            assert store_main(["query", "--db", db, "--strip-wall"]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_without_strip_wall_outputs_differ(self, tmp_path, reports, capsys):
        serial, fanned = reports
        outputs = []
        for name, report in (("serial", serial), ("jobs4", fanned)):
            db = str(tmp_path / f"{name}.db")
            store = ResultsStore(db, now=lambda: 1000.0 if name == "serial" else 2000.0)
            store.ingest_obj(report, source="campaign.json", commit=name)
            store.close()
            assert store_main(["query", "--db", db]) == 0
            outputs.append(capsys.readouterr().out)
        # Sanity check on the contract: the wall-side columns DO differ.
        assert outputs[0] != outputs[1]


class TestPersistence:
    def test_reopen_and_append(self, tmp_path):
        db = tmp_path / "r.db"
        store = ResultsStore(db)
        store.ingest_obj(BENCH_RECORD, source="BENCH_toy.json", commit="aaa")
        store.close()
        store = ResultsStore(db)
        assert len(store.runs()) == 1
        store.ingest_obj(HARNESS_PAYLOAD, source="harness:fig_x", commit="bbb")
        assert [r["commit"] for r in store.runs()] == ["aaa", "bbb"]
        assert store.commits() == ["aaa", "bbb"]
        store.close()

    def test_foreign_schema_file_is_refused(self, tmp_path):
        db = tmp_path / "r.db"
        import sqlite3

        conn = sqlite3.connect(db)
        conn.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
        conn.execute("INSERT INTO meta VALUES ('schema', 'other/9')")
        conn.commit()
        conn.close()
        from repro.obs.store import StoreSchemaError

        with pytest.raises(StoreSchemaError):
            ResultsStore(db)

    def test_gc_keeps_newest_per_kind_and_config(self, tmp_path):
        store = ResultsStore(tmp_path / "r.db")
        for commit in ("a", "b", "c"):
            store.ingest_obj(BENCH_RECORD, source="BENCH_toy.json", commit=commit)
        dry = store.gc(keep=1, dry_run=True)
        assert len(dry["deleted"]) == 2 and len(store.runs()) == 3
        result = store.gc(keep=1)
        assert len(result["deleted"]) == 2
        rows = store.runs()
        assert len(rows) == 1 and rows[0]["commit"] == "c"
        # Child rows went with their runs.
        assert store.wall_metrics("a") == {}
        store.close()


class TestRejection:
    """Malformed artifacts come back as structured errors, never rows."""

    def test_not_json(self, tmp_path):
        store = ResultsStore(tmp_path / "r.db")
        with pytest.raises(IngestError) as err:
            store.ingest_text("not json {", source="junk.txt")
        assert err.value.code == "NOT_JSON"
        assert err.value.source == "junk.txt"
        assert store.runs() == []
        store.close()

    def test_unrecognized_schema(self, tmp_path):
        store = ResultsStore(tmp_path / "r.db")
        with pytest.raises(IngestError) as err:
            store.ingest_obj({"hello": "world"}, source="mystery.json")
        assert err.value.code == "UNRECOGNIZED"
        assert store.runs() == []
        store.close()

    def test_malformed_known_schema(self, tmp_path):
        store = ResultsStore(tmp_path / "r.db")
        with pytest.raises(IngestError) as err:
            store.ingest_obj({"schema": "repro-bench/1", "cases": "nope"},
                             source="BENCH_bad.json")
        assert err.value.code == "MALFORMED"
        assert "BENCH_bad.json" in str(err.value)
        assert err.value.to_dict()["code"] == "MALFORMED"
        assert store.runs() == []
        store.close()

    def test_cli_ingest_continues_past_rejects(self, tmp_path, capsys):
        good = tmp_path / "BENCH_toy.json"
        good.write_text(json.dumps(BENCH_RECORD), encoding="utf-8")
        bad = tmp_path / "junk.json"
        bad.write_text("{", encoding="utf-8")
        db = str(tmp_path / "r.db")
        code = store_main(["ingest", str(good), str(bad), "--db", db,
                           "--commit", "abc"])
        assert code == 1
        captured = capsys.readouterr()
        assert "REJECTED" in captured.err
        store = ResultsStore(db)
        assert len(store.runs()) == 1  # the good file still landed
        store.close()


class TestTrendAndDiff:
    def _bench_at(self, wall):
        record = json.loads(json.dumps(BENCH_RECORD))
        record["cases"]["case_a"]["wall_seconds"] = {
            "min": wall, "max": wall, "mean": wall, "per_round": [wall],
        }
        return record

    def test_trend_axis_is_commit_order(self, tmp_path):
        store = ResultsStore(tmp_path / "r.db")
        for commit, wall in (("a", 0.2), ("b", 0.3)):
            store.ingest_obj(self._bench_at(wall), source="BENCH_toy.json",
                             commit=commit)
        trend = store.trend("wall_seconds")
        assert trend["commits"] == ["a", "b"]
        assert trend["series"]["toy:case_a"] == [0.2, 0.3]
        assert trend["wall"]["toy:case_a"] is True
        store.close()

    def test_trend_cli_flags_wall_regression(self, tmp_path, capsys):
        db = str(tmp_path / "r.db")
        store = ResultsStore(db)
        for commit, wall in (("a", 0.2), ("b", 0.9)):
            store.ingest_obj(self._bench_at(wall), source="BENCH_toy.json",
                             commit=commit)
        store.close()
        assert store_main(["trend", "--metric", "wall_seconds", "--db", db]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_trend_unknown_metric_exits_2(self, tmp_path, capsys):
        db = str(tmp_path / "r.db")
        ResultsStore(db).close()
        assert store_main(["trend", "--metric", "nope", "--db", db]) == 2
        assert "no data" in capsys.readouterr().err

    def test_diff_flags_sim_change_exactly(self, tmp_path):
        from repro.obs.store.query import diff_commits

        store = ResultsStore(tmp_path / "r.db")
        store.ingest_obj(BENCH_RECORD, source="BENCH_toy.json", commit="a")
        changed = json.loads(json.dumps(BENCH_RECORD))
        changed["cases"]["case_a"]["sim"]["events"] = 11  # sim-side drift
        store.ingest_obj(changed, source="BENCH_toy.json", commit="b")
        diff = diff_commits(store, "a", "b")
        assert any("sim" in p or "events" in p for p in diff["problems"])
        store.close()

    def test_diff_missing_commit_exits_2(self, tmp_path, capsys):
        db = str(tmp_path / "r.db")
        store = ResultsStore(db)
        store.ingest_obj(BENCH_RECORD, source="BENCH_toy.json", commit="a")
        store.close()
        assert store_main(["diff", "a", "ghost", "--db", db]) == 2
        assert "MISSING COMMIT" in capsys.readouterr().err


class TestConfigHash:
    def test_stable_across_key_order(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_differs_across_configs(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})
