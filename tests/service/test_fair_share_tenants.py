"""Fair share keys off the *token*, not a simulation knob.

Two tenants with distinct bearer tokens submit unequal load over HTTP;
one drain cycle folds everything into a single pool batch.  The
matchmaker must see the authenticated identities as owners and give the
light tenant (bob) better turnaround than the heavy one (alice) -- the
multi-tenant guarantee as an end-to-end property of the auth layer.
"""

import asyncio
import json
import statistics
import time

import pytest

from repro.service import (
    RunStore,
    ServiceApi,
    ServiceApiError,
    ServiceClient,
    ServiceConfig,
    ServiceExecutor,
    ServiceServer,
    mint_token,
)

SECRET = "fair-share-secret"
ALICE_JOBS = 8
BOB_JOBS = 2
WORK = 20.0


def run_two_tenants():
    async def _main():
        store = RunStore(":memory:")
        api = ServiceApi(store, ServiceConfig(secret=SECRET))
        # No executor on the server: the drain is manual so every job
        # lands in ONE batch after all submissions are in.
        server = ServiceServer(api)
        await server.start()
        expires = int(time.time()) + 600
        alice = ServiceClient(
            "127.0.0.1", server.port, token=mint_token(SECRET, "alice", expires)
        )
        bob = ServiceClient(
            "127.0.0.1", server.port, token=mint_token(SECRET, "bob", expires)
        )
        try:
            alice_ids = [
                (await alice.submit_job({"work": WORK}))["run_id"]
                for _ in range(ALICE_JOBS)
            ]
            bob_ids = [
                (await bob.submit_job({"work": WORK}))["run_id"]
                for _ in range(BOB_JOBS)
            ]
            # One machine serializes the pool: fair share fully decides
            # who runs next, so the ordering effect is unmissable.
            executor = ServiceExecutor(store, workers=1, batch_machines=1)
            finished = executor.drain_once()

            cross_tenant_error = None
            try:
                await bob.run_status(alice_ids[0])
            except ServiceApiError as exc:
                cross_tenant_error = (exc.status, exc.code)

            def finish_times(run_ids):
                times = []
                for run_id in run_ids:
                    record = json.loads(store.get_artifact(run_id, "result"))
                    assert record["job_state"] == "COMPLETED"
                    times.append(record["finished_at"])
                return times

            batch = json.loads(store.get_artifact(alice_ids[0], "batch"))
            result_record = json.loads(store.get_artifact(alice_ids[0], "result"))
            return {
                "finished": finished,
                "batch": batch,
                "owner": result_record["owner"],
                "alice_times": finish_times(alice_ids),
                "bob_times": finish_times(bob_ids),
                "cross_tenant_error": cross_tenant_error,
            }
        finally:
            await alice.close()
            await bob.close()
            await server.stop()
            store.close()

    return asyncio.run(_main())


@pytest.fixture(scope="module")
def outcome():
    return run_two_tenants()


def test_all_jobs_finish_in_one_batch(outcome):
    assert outcome["finished"] == ALICE_JOBS + BOB_JOBS
    assert len(outcome["batch"]["jobs"]) == ALICE_JOBS + BOB_JOBS


def test_owners_are_the_authenticated_tenants(outcome):
    owners = {entry["owner"] for entry in outcome["batch"]["jobs"]}
    assert owners == {"alice", "bob"}
    assert outcome["owner"] == "alice"  # alice's own record carries her identity


def test_light_tenant_gets_better_turnaround(outcome):
    # Everything was submitted at sim time zero, so finish time IS
    # turnaround.  Under fair share bob's two jobs must not be starved
    # behind alice's eight.
    bob_mean = statistics.mean(outcome["bob_times"])
    alice_mean = statistics.mean(outcome["alice_times"])
    assert bob_mean < alice_mean, (
        f"fair share failed: bob mean turnaround {bob_mean} >= "
        f"alice mean {alice_mean}"
    )
    # Stronger: bob is fully done before alice's last job.
    assert max(outcome["bob_times"]) < max(outcome["alice_times"])


def test_cross_tenant_query_is_wrong_tenant(outcome):
    assert outcome["cross_tenant_error"] == (403, "WRONG_TENANT")
