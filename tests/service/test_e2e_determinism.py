"""The acceptance pin: an HTTP-submitted run replays byte-identically.

An experiment submitted through the full concurrent edge -- socket,
auth, store, background drain task -- must leave artifacts that are
byte-for-byte what ``python -m repro.harness`` writes in a fresh
subprocess at the same seed.  If this holds, nothing above the
deterministic core leaked into the results; if it breaks, the
"deterministic core vs. concurrent edge" boundary has a hole.
"""

import asyncio
import json
import subprocess
import sys
import time

from repro.service import (
    RunStore,
    ServiceApi,
    ServiceClient,
    ServiceConfig,
    ServiceExecutor,
    ServiceServer,
    mint_token,
    replay_run,
)

SECRET = "e2e-secret"
EXPERIMENT = "fig1"
SEED = 3


def submit_over_http(db_path):
    """Full-stack run: server + drain task, one experiment submission."""

    async def _main():
        store = RunStore(db_path)
        api = ServiceApi(store, ServiceConfig(secret=SECRET))
        server = ServiceServer(api, executor=ServiceExecutor(store, workers=1))
        await server.start()
        token = mint_token(SECRET, "alice", int(time.time()) + 600)
        client = ServiceClient("127.0.0.1", server.port, token=token)
        try:
            run = await client.submit_experiment(
                {"experiment": EXPERIMENT, "seed": SEED}
            )
            status = await client.wait(run["run_id"], timeout=60.0)
            assert status["state"] == "done", status
            artifacts = {
                name: await client.artifact(run["run_id"], name)
                for name in ("trace", "metrics", "result")
            }
            return run["run_id"], artifacts
        finally:
            await client.close()
            await server.stop()
            store.close()

    return asyncio.run(_main())


def cli_reference(tmp_path):
    """The same experiment through ``python -m repro.harness``."""
    trace = tmp_path / "trace.jsonl"
    metrics = tmp_path / "metrics.json"
    result = tmp_path / "result.json"
    subprocess.run(
        [
            sys.executable, "-m", "repro.harness", EXPERIMENT,
            "--seed", str(SEED),
            "--trace", str(trace),
            "--metrics", str(metrics),
            "--json", str(result),
        ],
        check=True, capture_output=True, env={"PYTHONPATH": "src"},
    )
    return {
        "trace": trace.read_bytes(),
        "metrics": metrics.read_bytes(),
        "result": result.read_bytes(),
    }


def test_http_submitted_run_matches_cli_byte_for_byte(tmp_path):
    run_id, served = submit_over_http(str(tmp_path / "runs.db"))
    reference = cli_reference(tmp_path)
    for name in ("trace", "metrics", "result"):
        assert served[name] == reference[name], (
            f"{name} artifact differs between HTTP submission and CLI replay"
        )
    # The trace is real observation data, not an empty file passing
    # a vacuous comparison.
    assert len(served["trace"].splitlines()) > 100
    assert json.loads(served["metrics"])["counters"]

    # And the store row alone reproduces the run (the replay CLI's core).
    store = RunStore(str(tmp_path / "runs.db"))
    try:
        verdict = replay_run(store, run_id)
    finally:
        store.close()
    assert verdict["match"] is True
    assert set(verdict["checked"]) == {"result", "trace", "metrics"}
