"""Run store: schema, append-only journal, artifacts, persistence."""

import sqlite3

import pytest

from repro.service.errors import NotFound
from repro.service.store import STORE_SCHEMA, RunStore, StoreSchemaError


@pytest.fixture
def store():
    s = RunStore(":memory:")
    yield s
    s.close()


class TestSchema:
    def test_fresh_store_stamps_schema(self, tmp_path):
        path = str(tmp_path / "runs.db")
        RunStore(path).close()
        row = sqlite3.connect(path).execute(
            "SELECT value FROM meta WHERE key='schema'"
        ).fetchone()
        assert row == (STORE_SCHEMA,)

    def test_schema_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "runs.db")
        RunStore(path).close()
        db = sqlite3.connect(path)
        db.execute("UPDATE meta SET value='repro-service/999' WHERE key='schema'")
        db.commit()
        db.close()
        with pytest.raises(StoreSchemaError):
            RunStore(path)


class TestLifecycle:
    def test_submit_assigns_sequential_ids(self, store):
        assert store.submit_run("job", "alice", {"work": 1.0}) == 1
        assert store.submit_run("job", "bob", {"work": 2.0}) == 2

    def test_journal_is_append_only(self, store):
        run_id = store.submit_run("job", "alice", {"work": 1.0})
        store.record_state(run_id, "running")
        store.record_state(run_id, "done", detail="COMPLETED")
        assert store.event_journal(run_id) == [
            ("submitted", ""), ("running", ""), ("done", "COMPLETED"),
        ]
        assert store.run_status(run_id)["state"] == "done"

    def test_unknown_state_rejected(self, store):
        run_id = store.submit_run("job", "alice", {"work": 1.0})
        with pytest.raises(ValueError):
            store.record_state(run_id, "exploded")

    def test_unknown_run_rejected(self, store):
        with pytest.raises(NotFound):
            store.record_state(99, "running")
        with pytest.raises(NotFound):
            store.run_status(99)

    def test_pending_runs_in_submission_order(self, store):
        ids = [store.submit_run("job", "alice", {"work": float(i)}) for i in range(3)]
        store.record_state(ids[1], "running")
        assert [row["run_id"] for row in store.pending_runs()] == [ids[0], ids[2]]

    def test_queue_stats_and_active_count(self, store):
        a = store.submit_run("job", "alice", {"work": 1.0})
        store.submit_run("experiment", "bob", {"experiment": "fig1", "seed": 0})
        store.record_state(a, "running")
        stats = store.queue_stats()
        assert stats["total"] == 2
        assert stats["active"] == 2 == store.active_count()
        assert stats["by_state"]["running"] == 1
        assert stats["by_tenant"] == {"alice": 1, "bob": 1}
        store.record_state(a, "failed", detail="boom")
        assert store.active_count() == 1


class TestArtifacts:
    def test_round_trip_and_listing(self, store):
        run_id = store.submit_run("job", "alice", {"work": 1.0})
        store.put_artifact(run_id, "result", b'{"ok": true}')
        store.put_artifact(run_id, "trace", b"line1\nline2\n")
        assert store.get_artifact(run_id, "result") == b'{"ok": true}'
        assert store.artifact_names(run_id) == ["result", "trace"]

    def test_missing_artifact_is_typed(self, store):
        run_id = store.submit_run("job", "alice", {"work": 1.0})
        with pytest.raises(NotFound):
            store.get_artifact(run_id, "trace")


class TestPersistence:
    def test_state_cache_rebuilt_on_reopen(self, tmp_path):
        path = str(tmp_path / "runs.db")
        store = RunStore(path)
        a = store.submit_run("job", "alice", {"work": 1.0})
        b = store.submit_run("job", "bob", {"work": 2.0})
        store.record_state(a, "running")
        store.record_state(a, "done")
        store.put_artifact(a, "result", b"{}")
        store.close()

        reopened = RunStore(path)
        assert reopened.run_status(a)["state"] == "done"
        assert reopened.run_status(b)["state"] == "submitted"
        assert [row["run_id"] for row in reopened.pending_runs()] == [b]
        assert reopened.get_artifact(a, "result") == b"{}"
        reopened.close()
