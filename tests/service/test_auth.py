"""Token auth round-trips: mint/verify, expiry, garbling, cross-tenant."""

import pytest

from repro.service.auth import (
    TOKEN_VERSION,
    bearer_user,
    derive_user_secret,
    mint_token,
    verify_token,
)
from repro.service.errors import AuthError, BadRequest

SECRET = "test-service-secret"
NOW = 1_000_000


def _mint(user="alice", expires_at=NOW + 3600, secret=SECRET):
    return mint_token(secret, user, expires_at)


class TestMintVerify:
    def test_round_trip(self):
        assert verify_token(SECRET, _mint(), now=NOW) == "alice"

    def test_token_shape(self):
        token = _mint()
        assert token.startswith(f"{TOKEN_VERSION}.alice.{NOW + 3600}.")

    def test_users_with_dots_round_trip(self):
        token = _mint(user="svc.loadgen-01")
        assert verify_token(SECRET, token, now=NOW) == "svc.loadgen-01"

    def test_mint_rejects_bad_user_names(self):
        for bad in ("", "Alice", "a b", "a:b", "x" * 65, ".dot"):
            with pytest.raises(BadRequest):
                mint_token(SECRET, bad, NOW)

    def test_user_secrets_differ_per_user_and_service_secret(self):
        assert derive_user_secret(SECRET, "alice") != derive_user_secret(SECRET, "bob")
        assert derive_user_secret(SECRET, "alice") != derive_user_secret("other", "alice")


class TestRejections:
    def _code(self, token, now=NOW):
        with pytest.raises(AuthError) as excinfo:
            verify_token(SECRET, token, now=now)
        return excinfo.value.code

    def test_expired_token(self):
        token = _mint(expires_at=NOW - 1)
        assert self._code(token) == "TOKEN_EXPIRED"

    def test_expiry_checked_after_signature(self):
        # An expired *forged* token must read as invalid, not expired.
        forged = f"{TOKEN_VERSION}.alice.{NOW - 1}." + "0" * 64
        assert self._code(forged) == "TOKEN_INVALID"

    def test_garbled_tokens(self):
        good = _mint()
        for garbled in ("", "xx", good[:-2], good + "ff", good.replace(".", "!", 1),
                        f"{TOKEN_VERSION}.alice.notanint.{'0' * 64}"):
            assert self._code(garbled) == "TOKEN_INVALID"

    def test_cross_user_token_rejected(self):
        # bob presenting a token re-labelled as alice: signature is bound
        # to the user name, so the swap reads as garbage.
        token = _mint(user="bob")
        tampered = token.replace(".bob.", ".alice.")
        assert self._code(tampered) == "TOKEN_INVALID"

    def test_wrong_service_secret_rejected(self):
        token = _mint(secret="some-other-deployment")
        assert self._code(token) == "TOKEN_INVALID"


class TestBearerHeader:
    def test_round_trip(self):
        assert bearer_user(SECRET, f"Bearer {_mint()}", NOW) == "alice"

    def test_missing_header_is_unauthenticated(self):
        with pytest.raises(AuthError) as excinfo:
            bearer_user(SECRET, None, NOW)
        assert excinfo.value.code == "UNAUTHENTICATED"

    def test_wrong_scheme_is_invalid(self):
        with pytest.raises(AuthError) as excinfo:
            bearer_user(SECRET, f"Basic {_mint()}", NOW)
        assert excinfo.value.code == "TOKEN_INVALID"
