"""GridConsole mounting: /console and /v1/results/* over real HTTP.

Same harness as test_api_http: a real asyncio server on a real socket,
the real client, no mocks.  The console routes are unauthenticated
read-only observability, so every test here runs without a token.
"""

import asyncio
import json

from repro.obs.store import ResultsStore
from repro.service import RunStore, ServiceApi, ServiceConfig, ServiceServer
from repro.service.client import ServiceClient

SECRET = "console-test-secret"

BENCH_RECORD = {
    "schema": "repro-bench/1",
    "bench": "toy",
    "rounds_override": None,
    "cases": {
        "case_a": {
            "ok": True, "deterministic": True, "iterations": 1, "rounds": 1,
            "error": None,
            "wall_seconds": {"min": 0.2, "max": 0.2, "mean": 0.2,
                             "per_round": [0.2]},
            "sim": {"events": 4, "sim_time": 2.0, "triples": [], "top": [
                {"daemon": "schedd", "phase": "match", "scope": "-",
                 "events": 4, "sim_time": 2.0},
            ]},
            "histograms": {}, "critical_path": [],
            "folded": ["schedd;match 2.0"],
        }
    },
}

TRACE_JSONL = "\n".join([
    json.dumps({"kind": "event", "topic": "error", "name": "hop",
                "time": 1.0, "attrs": {"scope": "JOB"}}),
    json.dumps({"kind": "event", "topic": "error", "name": "hop",
                "time": 2.0, "attrs": {"scope": "GRID"}}),
])


def seeded_db(tmp_path):
    db = tmp_path / "results.db"
    store = ResultsStore(db)
    store.ingest_obj(BENCH_RECORD, source="BENCH_toy.json", commit="aaa")
    store.ingest_text(TRACE_JSONL, source="t.jsonl", commit="aaa")
    store.close()
    return db


def run_console(coro_fn, results_db):
    async def _main():
        store = RunStore(":memory:")
        config = ServiceConfig(secret=SECRET, results_db=results_db)
        server = ServiceServer(ServiceApi(store, config))
        await server.start()
        client = ServiceClient("127.0.0.1", server.port)
        try:
            return await coro_fn(client, server)
        finally:
            await client.close()
            await server.stop()
            store.close()

    return asyncio.run(_main())


class TestConsolePage:
    def test_console_serves_html_unauthenticated(self, tmp_path):
        async def check(client, server):
            return await client.request("GET", "/console")

        response = run_console(check, seeded_db(tmp_path))
        assert response.status == 200
        assert response.headers["content-type"].startswith("text/html")
        page = response.body.decode("utf-8")
        assert "GridConsole" in page
        # The page drives exactly the mounted data routes.
        for route in ("summary", "errors", "flame", "matrix", "trend"):
            assert f"/v1/results/{route}" in page

    def test_console_renders_even_when_store_missing(self, tmp_path):
        async def check(client, server):
            page = await client.request("GET", "/console")
            data = await client.request("GET", "/v1/results/summary")
            return page, data

        page, data = run_console(check, tmp_path / "missing.db")
        assert page.status == 200  # the page always renders...
        assert data.status == 404  # ...and the data route says why it's empty
        assert data.json()["error"]["code"] == "NO_RESULTS_DB"

    def test_console_disabled_is_a_404(self, tmp_path):
        async def check(client, server):
            return await client.request("GET", "/console")

        response = run_console(check, None)
        assert response.status == 404


class TestResultsRoutes:
    def test_summary_reports_runs_and_live_traffic(self, tmp_path):
        async def check(client, server):
            await client.request("GET", "/v1/results/summary")
            return (await client.request("GET", "/v1/results/summary")).json()

        summary = run_console(check, seeded_db(tmp_path))
        assert summary["runs"] == 2
        assert summary["by_kind"] == {"bench": 1, "trace": 1}
        assert summary["commits"] == ["aaa"]
        # Live traffic: the first summary request was already counted.
        assert summary["service"]["requests_total"] >= 1
        assert summary["service"]["requests_by_route"]["/v1/results"] >= 1
        assert summary["service"]["queue"]["active"] == 0

    def test_error_hops_come_back_in_scope_ladder_order(self, tmp_path):
        async def check(client, server):
            return (await client.request("GET", "/v1/results/errors")).json()

        data = run_console(check, seeded_db(tmp_path))
        assert data["total"] == 2
        assert [row["scope"] for row in data["ladder"]] == ["JOB", "GRID"]
        assert data["order"][0] == "FILE" and data["order"][-1] == "GRID"

    def test_flame_merges_folded_stacks(self, tmp_path):
        async def check(client, server):
            return (await client.request("GET", "/v1/results/flame")).json()

        data = run_console(check, seeded_db(tmp_path))
        assert data["folded"] == [{"stack": "schedd;match", "value": 2.0}]
        assert data["sections"][0]["daemon"] == "schedd"

    def test_trend_requires_metric(self, tmp_path):
        async def check(client, server):
            missing = await client.request("GET", "/v1/results/trend")
            good = await client.request(
                "GET", "/v1/results/trend?metric=wall_seconds")
            return missing, good

        missing, good = run_console(check, seeded_db(tmp_path))
        assert missing.status == 400
        assert missing.json()["error"]["code"] == "BAD_REQUEST"
        assert good.status == 200
        assert good.json()["series"]["toy:case_a"] == [0.2]

    def test_unknown_route_and_write_method_are_typed(self, tmp_path):
        async def check(client, server):
            unknown = await client.request("GET", "/v1/results/nope")
            write = await client.request("POST", "/v1/results/summary", {})
            return unknown, write

        unknown, write = run_console(check, seeded_db(tmp_path))
        assert unknown.status == 404
        assert unknown.json()["error"]["code"] == "NOT_FOUND"
        assert write.status == 405
        assert write.json()["error"]["code"] == "METHOD_NOT_ALLOWED"

    def test_authenticated_routes_still_require_token(self, tmp_path):
        async def check(client, server):
            return await client.request("GET", "/v1/queue")

        response = run_console(check, seeded_db(tmp_path))
        assert response.status == 401  # console mounting didn't widen auth

    def test_new_ingests_visible_without_restart(self, tmp_path):
        db = seeded_db(tmp_path)

        async def check(client, server):
            before = (await client.request("GET", "/v1/results/summary")).json()
            store = ResultsStore(db)
            store.ingest_obj(BENCH_RECORD, source="BENCH_toy.json", commit="bbb")
            store.close()
            after = (await client.request("GET", "/v1/results/summary")).json()
            return before, after

        before, after = run_console(check, db)
        assert before["runs"] == 2 and after["runs"] == 3
        assert after["commits"] == ["aaa", "bbb"]
