"""Executor bridge: deterministic batches, the drain cycle, replay."""

import json

import pytest

from repro.service.executor import (
    ServiceExecutor,
    canonical_dump_bytes,
    execute_batch,
    execute_item,
    replay_run,
)
from repro.service.specs import build_batch_spec
from repro.service.store import RunStore, canonical_json


@pytest.fixture
def store():
    s = RunStore(":memory:")
    yield s
    s.close()


def make_executor(store, **kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("batch_machines", 2)
    return ServiceExecutor(store, **kwargs)


def batch_of(specs, n_machines=2, seed=0):
    entries = [
        {"run_id": i + 1, "tenant": owner, "spec": spec}
        for i, (owner, spec) in enumerate(specs)
    ]
    return build_batch_spec(entries, n_machines=n_machines, seed=seed, max_time=1e6)


class TestExecuteBatch:
    def test_same_spec_twice_is_identical(self):
        batch = batch_of([
            ("alice", {"work": 10.0}),
            ("bob", {"work": 5.0, "exception": "SegmentationFault"}),
            ("alice", {"work": 2.0, "exit_code": 3}),
        ])
        first = execute_batch(batch)
        second = execute_batch(batch)
        assert canonical_dump_bytes(first) == canonical_dump_bytes(second)

    def test_outcomes_match_workload_expectations(self):
        batch = batch_of([
            ("alice", {"work": 10.0}),
            ("bob", {"work": 5.0, "exception": "SegmentationFault"}),
        ])
        result = execute_batch(batch)
        assert result["schema"] == "repro-service-batch-result/1"
        assert result["owners"] == ["alice", "bob"]
        by_run = {record["run_id"]: record for record in result["jobs"]}
        assert by_run[1]["job_state"] == "COMPLETED"
        assert by_run[2]["job_state"] == "COMPLETED"  # a *result*, not a grid error
        assert all(record["matches_expected"] for record in result["jobs"])

    def test_unknown_item_kind_is_a_failure_record(self):
        outcome = execute_item(canonical_json({"kind": "mystery"}))
        assert outcome["ok"] is False
        assert "mystery" in outcome["error"]


class TestDrainCycle:
    def test_drain_once_finishes_mixed_pending_runs(self, store):
        job = store.submit_run("job", "alice", {"work": 5.0})
        exp = store.submit_run(
            "experiment", "alice", {"experiment": "time_scope", "seed": 0}
        )
        assert make_executor(store).drain_once() == 2
        assert store.run_status(job)["state"] == "done"
        assert store.run_status(job)["detail"] == "COMPLETED"
        assert store.artifact_names(job) == ["batch", "result"]
        assert store.run_status(exp)["state"] == "done"
        assert store.artifact_names(exp) == ["metrics", "result", "table", "trace"]
        # Journal shows the full lifecycle, and nothing is left pending.
        assert [state for state, _ in store.event_journal(job)] == [
            "submitted", "running", "done",
        ]
        assert store.pending_runs() == []
        assert make_executor(store).drain_once() == 0

    def test_experiment_result_uses_cli_json_envelope(self, store):
        exp = store.submit_run(
            "experiment", "alice", {"experiment": "time_scope", "seed": 4}
        )
        make_executor(store).drain_once()
        result = json.loads(store.get_artifact(exp, "result"))
        assert result["seed"] == 4
        assert list(result["experiments"]) == ["time_scope"]

    def test_forged_bad_spec_fails_the_run_not_the_drain(self, store):
        # Bypass API validation: a row the normalizers would have refused.
        bad = store.submit_run("experiment", "alice", {"experiment": "nope", "seed": 0})
        good = store.submit_run(
            "experiment", "alice", {"experiment": "time_scope", "seed": 0}
        )
        finished = make_executor(store).drain_once()
        assert finished == 2  # both runs reached a terminal state
        assert store.run_status(bad)["state"] == "failed"
        assert store.run_status(bad)["detail"]  # carries the error text
        assert store.run_status(good)["state"] == "done"

    def test_campaign_run_produces_report(self, store):
        run = store.submit_run("campaign", "alice", {
            "mode": "scoped", "seed": 0, "max_order": 1,
            "kinds": ["MachineCrash"], "n_jobs": 2, "n_machines": 2,
        })
        make_executor(store).drain_once()
        assert store.run_status(run)["state"] == "done"
        report = json.loads(store.get_artifact(run, "report"))
        assert report["campaign"]["mode"] == "scoped"


class TestReplay:
    def test_replay_matches_for_done_runs(self, store):
        job = store.submit_run("job", "alice", {"work": 5.0})
        make_executor(store).drain_once()
        verdict = replay_run(store, job)
        assert verdict == {
            "run_id": job, "kind": "job",
            "checked": {"result": True}, "match": True,
        }

    def test_replay_detects_tampered_artifact(self, store):
        job = store.submit_run("job", "alice", {"work": 5.0})
        make_executor(store).drain_once()
        store.put_artifact(job, "result", b'{"doctored": true}\n')
        assert replay_run(store, job)["match"] is False

    def test_replay_refuses_unfinished_runs(self, store):
        pending = store.submit_run("job", "alice", {"work": 5.0})
        with pytest.raises(ValueError):
            replay_run(store, pending)
