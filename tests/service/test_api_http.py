"""The HTTP edge: routes, typed rejections, admission control.

Every test drives the real asyncio server over a real socket with the
real client -- the transport, parser, auth, and store all in the loop.
No pytest-asyncio dependency: each test owns a fresh event loop via
``asyncio.run``.
"""

import asyncio
import time

import pytest

from repro.service import (
    RunStore,
    ServiceApi,
    ServiceApiError,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    mint_token,
)

SECRET = "api-test-secret"


def run_service(coro_fn, queue_limit=100, bench_dir=None, now=None):
    """Start a server, run ``coro_fn(server, store)``, tear down."""

    async def _main():
        store = RunStore(":memory:")
        config = ServiceConfig(
            secret=SECRET, queue_limit=queue_limit, bench_dir=bench_dir,
            now=now or time.time,
        )
        server = ServiceServer(ServiceApi(store, config))
        await server.start()
        try:
            return await coro_fn(server, store)
        finally:
            await server.stop()
            store.close()

    return asyncio.run(_main())


def token_for(user="alice", ttl=600):
    return mint_token(SECRET, user, int(time.time()) + ttl)


def client_for(server, token):
    return ServiceClient("127.0.0.1", server.port, token=token)


class TestRoutes:
    def test_health_is_unauthenticated(self):
        async def check(server, store):
            client = ServiceClient("127.0.0.1", server.port)
            try:
                return await client.health()
            finally:
                await client.close()

        health = run_service(check)
        assert health["ok"] is True
        assert health["schema"] == "repro-service/1"

    def test_submit_then_status_then_queue(self):
        async def check(server, store):
            client = client_for(server, token_for())
            try:
                run = await client.submit_job({"work": 5.0})
                status = await client.run_status(run["run_id"])
                queue = await client.queue()
                return run, status, queue
            finally:
                await client.close()

        run, status, queue = run_service(check)
        assert run == {"run_id": 1, "kind": "job", "state": "submitted"}
        assert status["state"] == "submitted"
        assert status["tenant"] == "alice"
        assert queue["by_tenant"] == {"alice": 1}

    def test_unknown_route_and_unknown_run_are_404(self):
        async def check(server, store):
            client = client_for(server, token_for())
            try:
                codes = []
                for path in ("/v1/nonsense", "/v1/runs/42", "/nope"):
                    response = await client.request("GET", path)
                    codes.append((response.status, response.json()["error"]["code"]))
                return codes
            finally:
                await client.close()

        assert run_service(check) == [(404, "NOT_FOUND")] * 3

    def test_artifact_listing_before_completion_is_empty(self):
        async def check(server, store):
            client = client_for(server, token_for())
            try:
                run = await client.submit_job({"work": 5.0})
                listing = await client.request(
                    "GET", f"/v1/runs/{run['run_id']}/artifacts"
                )
                missing = await client.request(
                    "GET", f"/v1/runs/{run['run_id']}/artifacts/trace"
                )
                return listing.json(), missing.status
            finally:
                await client.close()

        listing, missing_status = run_service(check)
        assert listing["artifacts"] == []
        assert missing_status == 404

    def test_bench_baselines_served(self):
        async def check(server, store):
            client = client_for(server, token_for())
            try:
                names = (await client.bench_baselines())["baselines"]
                one = await client.bench_baseline(names[0])
                traversal = await client.request("GET", "/v1/bench/BENCH_../etc")
                return names, one, traversal.status
            finally:
                await client.close()

        names, one, traversal_status = run_service(check, bench_dir="benchmarks/baseline")
        assert any(name.startswith("BENCH_") for name in names)
        assert one["schema"] == "repro-bench/1"
        assert traversal_status == 404


class TestAuthRejections:
    def _submit_code(self, token):
        async def check(server, store):
            client = ServiceClient("127.0.0.1", server.port, token=token)
            try:
                with pytest.raises(ServiceApiError) as excinfo:
                    await client.submit_job({"work": 1.0})
                return excinfo.value.status, excinfo.value.code
            finally:
                await client.close()

        return run_service(check)

    def test_missing_token(self):
        assert self._submit_code(None) == (401, "UNAUTHENTICATED")

    def test_garbled_token(self):
        assert self._submit_code("sv1.alice.garbage") == (401, "TOKEN_INVALID")

    def test_expired_token(self):
        expired = mint_token(SECRET, "alice", int(time.time()) - 10)
        assert self._submit_code(expired) == (401, "TOKEN_EXPIRED")

    def test_token_from_other_deployment(self):
        foreign = mint_token("other-secret", "alice", int(time.time()) + 600)
        assert self._submit_code(foreign) == (401, "TOKEN_INVALID")


class TestWrongTenant:
    def test_cross_tenant_status_and_artifacts_are_403(self):
        async def check(server, store):
            alice = client_for(server, token_for("alice"))
            bob = client_for(server, token_for("bob"))
            try:
                run = await alice.submit_job({"work": 1.0})
                with pytest.raises(ServiceApiError) as status_err:
                    await bob.run_status(run["run_id"])
                with pytest.raises(ServiceApiError) as artifact_err:
                    await bob.artifact(run["run_id"], "result")
                own = await bob.submit_job({"work": 1.0})
                own_status = await bob.run_status(own["run_id"])
                return status_err.value, artifact_err.value, own_status
            finally:
                await alice.close()
                await bob.close()

        status_err, artifact_err, own_status = run_service(check)
        assert (status_err.status, status_err.code) == (403, "WRONG_TENANT")
        assert (artifact_err.status, artifact_err.code) == (403, "WRONG_TENANT")
        assert own_status["tenant"] == "bob"


class TestBadSpecs:
    def _reject(self, route, payload):
        async def check(server, store):
            client = client_for(server, token_for())
            try:
                with pytest.raises(ServiceApiError) as excinfo:
                    await client._json("POST", route, payload)
                return excinfo.value.status, excinfo.value.code
            finally:
                await client.close()

        return run_service(check)

    def test_job_spec_rejections(self):
        for payload in (
            {},                               # work missing
            {"work": 0.0},                    # non-positive
            {"work": 1e9},                    # over cap
            {"work": 1.0, "owner": "root"},   # identity smuggling
            {"work": 1.0, "exception": "Boom"},
            {"work": 1.0, "exit_code": 77},
            {"work": 1.0, "nonsense": 1},
        ):
            assert self._reject("/v1/jobs", payload) == (400, "BAD_REQUEST")

    def test_experiment_spec_rejections(self):
        assert self._reject("/v1/experiments", {"experiment": "nope"}) == (400, "BAD_REQUEST")
        assert self._reject(
            "/v1/experiments", {"experiment": "fig1", "seed": "zero"}
        ) == (400, "BAD_REQUEST")

    def test_campaign_spec_rejections(self):
        assert self._reject("/v1/campaigns", {"mode": "yolo"}) == (400, "BAD_REQUEST")
        assert self._reject(
            "/v1/campaigns", {"kinds": ["made_up_fault"]}
        ) == (400, "BAD_REQUEST")

    def test_malformed_json_body(self):
        async def check(server, store):
            client = client_for(server, token_for())
            try:
                # Bypass the client's JSON encoding with raw garbage.
                client._writer = None  # force fresh connection state
                await client._connect()
                body = b"{not json"
                client._writer.write(
                    (
                        f"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
                        f"Authorization: Bearer {token_for()}\r\n"
                        f"Content-Length: {len(body)}\r\n\r\n"
                    ).encode() + body
                )
                await client._writer.drain()
                raw = await client._reader.readuntil(b"\r\n")
                return int(raw.split(b" ")[1])
            finally:
                await client.close()

        assert run_service(check) == 400


class TestAdmissionControl:
    def test_queue_full_is_typed_and_graceful(self):
        async def check(server, store):
            client = client_for(server, token_for())
            try:
                accepted = [await client.submit_job({"work": 1.0}) for _ in range(3)]
                with pytest.raises(ServiceApiError) as excinfo:
                    await client.submit_job({"work": 1.0})
                # The connection survives the rejection: next query works.
                queue = await client.queue()
                return accepted, excinfo.value, queue
            finally:
                await client.close()

        accepted, err, queue = run_service(check, queue_limit=3)
        assert len(accepted) == 3
        assert (err.status, err.code) == (429, "QUEUE_FULL")
        assert queue["active"] == 3
