"""Tests for workload generation, expectations, metrics, and reporting."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.result import ResultFile, ResultStatus
from repro.harness.report import Table, fmt
from repro.harness.workloads import WorkloadSpec, expected_result_for, make_workload
from repro.jvm.program import JavaProgram, Step
from repro.sim.filesystem import LocalFileSystem


class TestExpectedResult:
    def test_plain_compute_completes_zero(self):
        program = JavaProgram(steps=[Step.compute(1.0)])
        assert expected_result_for(program).same_outcome(ResultFile.completed(0))

    def test_exit_code(self):
        program = JavaProgram(steps=[Step.compute(1.0), Step.exit(4)])
        assert expected_result_for(program).exit_code == 4

    def test_uncaught_throw(self):
        program = JavaProgram(steps=[Step.throw("NullPointerException")])
        expected = expected_result_for(program)
        assert expected.status is ResultStatus.EXCEPTION
        assert expected.exception_name == "NullPointerException"

    def test_handled_throw_continues(self):
        program = JavaProgram(
            steps=[Step.throw("ArithmeticException"), Step.exit(2)],
            handles={"ArithmeticException"},
        )
        assert expected_result_for(program).exit_code == 2

    def test_read_of_known_file_succeeds(self):
        program = JavaProgram(steps=[Step.read("/home/user/x")])
        expected = expected_result_for(program, {"/home/user/x"})
        assert expected.status is ResultStatus.COMPLETED

    def test_read_of_unknown_file_is_fnf(self):
        program = JavaProgram(steps=[Step.read("/home/user/none")])
        expected = expected_result_for(program, set())
        assert expected.exception_name == "FileNotFoundException"

    def test_steps_after_decision_ignored(self):
        program = JavaProgram(steps=[Step.exit(1), Step.throw("NullPointerException")])
        assert expected_result_for(program).exit_code == 1


class TestMakeWorkload:
    def test_deterministic(self):
        spec = WorkloadSpec(n_jobs=10)
        a = make_workload(spec, random.Random(7))
        b = make_workload(spec, random.Random(7))
        assert [j.job_id for j in a] == [j.job_id for j in b]
        assert [len(j.image.program.steps) for j in a] == [
            len(j.image.program.steps) for j in b
        ]

    def test_every_job_has_expectation(self):
        jobs = make_workload(WorkloadSpec(n_jobs=8), random.Random(1))
        assert all(j.expected_result is not None for j in jobs)

    def test_io_jobs_populate_home_fs(self):
        fs = LocalFileSystem()
        fs.mkdir("/home/user", parents=True)
        jobs = make_workload(
            WorkloadSpec(n_jobs=20, io_fraction=1.0), random.Random(1), home_fs=fs
        )
        reads = [
            s for j in jobs for s in j.image.program.steps if s.kind.value == "read"
        ]
        assert reads
        for step in reads:
            assert fs.exists(step.arg)

    def test_fraction_zero_means_none(self):
        jobs = make_workload(
            WorkloadSpec(n_jobs=20, io_fraction=0.0, exception_fraction=0.0,
                         exit_code_fraction=0.0),
            random.Random(3),
        )
        for job in jobs:
            assert job.expected_result.same_outcome(ResultFile.completed(0))

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_expectations_internally_consistent(self, seed):
        fs = LocalFileSystem()
        fs.mkdir("/home/user", parents=True)
        jobs = make_workload(
            WorkloadSpec(n_jobs=5, io_fraction=0.5, exception_fraction=0.3,
                         exit_code_fraction=0.3),
            random.Random(seed),
            home_fs=fs,
        )
        for job in jobs:
            expected = job.expected_result
            assert expected.is_program_result


class TestReport:
    def test_fmt(self):
        assert fmt(True) == "yes"
        assert fmt(3.14159) == "3.142"
        assert fmt(5.0) == "5"
        assert fmt("text") == "text"
        assert fmt(12) == "12"

    def test_fmt_non_finite_floats(self):
        """A diverged metric must render, not crash the table."""
        assert fmt(float("inf")) == "inf"
        assert fmt(float("-inf")) == "-inf"
        assert fmt(float("nan")) == "nan"

    def test_table_renders_non_finite_cells(self):
        table = Table(["metric", "value"], [["diverged", float("inf")],
                                            ["undefined", float("nan")]])
        text = table.render()
        assert "inf" in text and "nan" in text

    def test_table_footer_renders_after_rule(self):
        table = Table(["a"], [[1]], title="T")
        table.add_footer("wall clock 0.5s")
        lines = table.render().splitlines()
        assert lines[-1] == "wall clock 0.5s"
        assert set(lines[-2]) == {"-"}

    def test_table_renders_aligned(self):
        table = Table(["name", "value"], [["a", 1], ["longer", 22]], title="T")
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_row_width_mismatch_rejected(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_str_equals_render(self):
        table = Table(["x"], [[1]])
        assert str(table) == table.render()


class TestMetrics:
    def test_collect_on_clean_run(self):
        from repro.condor import Pool, PoolConfig
        from repro.harness.metrics import collect_metrics

        pool = Pool(PoolConfig(n_machines=2))
        jobs = make_workload(WorkloadSpec(n_jobs=4, io_fraction=0.0), random.Random(2))
        for job in jobs:
            pool.submit(job)
        pool.run_until_done(max_time=50_000)
        metrics = collect_metrics(pool, jobs)
        assert metrics.jobs == 4
        assert metrics.completed == 4
        assert metrics.correct_results == 4
        assert metrics.user_visible_incidental == 0
        assert metrics.postmortems_required == 0
        assert metrics.wasted_attempts == 0
        assert metrics.network_bytes > 0
        assert metrics.mean_turnaround > 0

    def test_as_rows_shape(self):
        from repro.harness.metrics import RunMetrics

        rows = RunMetrics().as_rows()
        assert len(rows) == 14
        assert all(len(r) == 2 for r in rows)
        # Wall clock is deliberately absent: rendered tables must stay
        # bit-reproducible across runs; timing travels in footers.
        assert not any(r[0] == "wall clock (s)" for r in rows)

    def test_wall_clock_flows_through_collect(self):
        from repro.condor import Pool, PoolConfig
        from repro.harness.metrics import collect_metrics

        pool = Pool(PoolConfig(n_machines=1))
        metrics = collect_metrics(pool, [], wall_clock=1.25)
        assert metrics.wall_clock_seconds == 1.25
