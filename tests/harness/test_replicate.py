"""Tests for seed replication, including the headline shape across seeds."""

import pytest

from repro.harness.replicate import Replication, replicate


class TestReplicateMechanics:
    def test_aggregation(self):
        rep = replicate(lambda seed: {"x": float(seed), "y": 2.0}, seeds=[1, 2, 3])
        assert rep.mean("x") == 2.0
        assert rep.min("x") == 1.0 and rep.max("x") == 3.0
        assert rep.std("y") == 0.0

    def test_single_seed_std_zero(self):
        rep = replicate(lambda seed: {"x": 5.0}, seeds=[7])
        assert rep.std("x") == 0.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda seed: {"x": 1.0}, seeds=[])

    def test_inconsistent_metrics_rejected(self):
        def run(seed):
            return {"a": 1.0} if seed == 1 else {"b": 1.0}

        with pytest.raises(ValueError):
            replicate(run, seeds=[1, 2])

    def test_metric_insertion_order_is_not_significant(self):
        """Parallel workers cannot guarantee dict insertion order; rows
        reporting the same metric *set* in any order must aggregate, with
        the first row's order as the canonical one."""

        def run(seed):
            if seed % 2:
                return {"b": 2.0, "a": float(seed)}
            return {"a": float(seed), "b": 2.0}

        rep = replicate(run, seeds=[0, 1, 2, 3])
        assert list(rep.samples) == ["a", "b"]
        assert rep.max("a") == 3.0
        assert rep.mean("b") == 2.0
        assert list(rep.samples["a"]) == [0.0, 1.0, 2.0, 3.0]

    def test_extra_metric_still_rejected(self):
        def run(seed):
            row = {"a": 1.0}
            if seed == 2:
                row["extra"] = 9.0
            return row

        with pytest.raises(ValueError):
            replicate(run, seeds=[1, 2])

    def test_always_predicate(self):
        rep = replicate(lambda seed: {"x": float(seed)}, seeds=[1, 2, 3])
        assert rep.always(lambda row: row["x"] >= 1.0)
        assert not rep.always(lambda row: row["x"] >= 2.0)

    def test_table_renders(self):
        rep = replicate(lambda seed: {"metric": float(seed)}, seeds=[1, 2])
        text = rep.table("demo").render()
        assert "demo (n=2 seeds)" in text and "metric" in text


class TestHeadlineShapeAcrossSeeds:
    def test_scoped_beats_naive_for_every_seed(self):
        """The §2.3-vs-§4 shape is not a seed artifact."""
        from repro.harness.experiments import run_naive_vs_scoped

        def run(seed):
            result = run_naive_vs_scoped(seed=seed, n_jobs=12, n_machines=4)
            return {
                "naive_incidental": float(result.naive.user_visible_incidental),
                "scoped_incidental": float(result.scoped.user_visible_incidental),
                "naive_p1": float(result.naive_violations[1]),
                "scoped_p1": float(result.scoped_violations[1]),
            }

        rep = replicate(run, seeds=[0, 1, 2])
        assert rep.always(
            lambda row: row["scoped_incidental"] < row["naive_incidental"]
        )
        assert rep.always(lambda row: row["scoped_p1"] == 0.0)
        assert rep.mean("naive_p1") > 0.0
