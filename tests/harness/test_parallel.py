"""Tests for the process-parallel harness: determinism and failure policy.

The worker functions live at module level so they pickle across the
process boundary; anything non-picklable must take the serial fallback.
"""

import os
import pickle
import time

import numpy as np
import pytest

from repro.harness.parallel import (
    ItemResult,
    ParallelRunner,
    WorkerFailure,
    shard_items,
)
from repro.harness.replicate import replicate
from repro.sim.rng import RngRegistry


def _deterministic_run(seed):
    rng = RngRegistry(seed).stream("parallel-test")
    return {"a": rng.random(), "b": rng.gauss(0.0, 1.0), "c": float(seed)}


def _raising_run(seed):
    if seed == 2:
        raise RuntimeError("seed two is cursed")
    return {"x": float(seed)}


def _crashing_run(seed):
    if seed == 3:
        os._exit(13)
    return {"x": float(seed)}


def _sleepy_run(seed):
    time.sleep(3.0)
    return {"x": float(seed)}


class TestShardItems:
    def test_contiguous_and_balanced(self):
        assert shard_items([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]
        assert shard_items(list(range(8)), 4) == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_more_shards_than_items(self):
        assert shard_items([1, 2], 5) == [[1], [2]]

    def test_concatenation_preserves_order(self):
        items = [9, 3, 7, 1, 5, 2]
        shards = shard_items(items, 4)
        assert [x for shard in shards for x in shard] == items


class TestRunnerValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(_deterministic_run, workers=0)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(_deterministic_run, workers=2, timeout=0.0)

    def test_empty_items(self):
        assert ParallelRunner(_deterministic_run, workers=2).map([]) == []


class TestDeterministicMerge:
    def test_parallel_matches_serial_order(self):
        seeds = [7, 1, 5, 3, 9, 0]
        serial = ParallelRunner(_deterministic_run, workers=1).map(seeds)
        parallel = ParallelRunner(_deterministic_run, workers=3).map(seeds)
        assert [r.item for r in parallel] == seeds
        assert [r.value for r in parallel] == [r.value for r in serial]

    def test_each_result_carries_timing(self):
        results = ParallelRunner(_deterministic_run, workers=2).map([1, 2, 3])
        assert all(isinstance(r, ItemResult) and r.seconds >= 0.0 for r in results)

    def test_replicate_parallel_bit_identical_to_serial(self):
        """The acceptance contract: workers=4 samples == workers=1 samples."""
        seeds = list(range(8))
        serial = replicate(_deterministic_run, seeds, workers=1)
        parallel = replicate(_deterministic_run, seeds, workers=4)
        assert parallel.seeds == serial.seeds
        assert list(parallel.samples) == list(serial.samples)
        for name, values in serial.samples.items():
            assert np.array_equal(values, parallel.samples[name]), name

    def test_replicate_records_timings(self):
        rep = replicate(_deterministic_run, [1, 2, 3], workers=2)
        assert len(rep.seed_seconds) == 3
        assert rep.wall_seconds > 0.0
        assert "wall clock" in rep.table("timed").render()


class TestWorkerFailurePolicy:
    """P1/P2: a broken worker is an explicit error naming its seeds,
    never a silently shorter sample array."""

    def test_raising_worker_names_the_seed(self):
        with pytest.raises(WorkerFailure) as info:
            ParallelRunner(_raising_run, workers=2).map([1, 2, 3, 4])
        assert info.value.seeds == (2,)
        assert "cursed" in str(info.value)

    def test_raising_worker_serial_path_names_the_seed(self):
        with pytest.raises(WorkerFailure) as info:
            ParallelRunner(_raising_run, workers=1).map([1, 2, 3])
        assert info.value.seeds == (2,)

    def test_crashed_worker_names_its_shard(self):
        with pytest.raises(WorkerFailure) as info:
            ParallelRunner(_crashing_run, workers=2).map([1, 2, 3, 4])
        assert 3 in info.value.seeds

    def test_hung_worker_hits_timeout(self):
        with pytest.raises(WorkerFailure) as info:
            ParallelRunner(_sleepy_run, workers=2, timeout=0.25).map([0, 1])
        assert info.value.cause == "timeout"
        assert info.value.seeds in ((0,), (1,))

    def test_worker_failure_pickles_with_seeds(self):
        err = WorkerFailure("boom on 7", [7], cause="RuntimeError('x')")
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, WorkerFailure)
        assert clone.seeds == (7,) and clone.cause == "RuntimeError('x')"


class TestSerialFallback:
    def test_non_picklable_fn_falls_back_to_serial(self):
        local = {"calls": 0}

        def run(seed):
            local["calls"] += 1
            return {"x": float(seed)}

        results = ParallelRunner(run, workers=4).map([1, 2, 3])
        assert [r.value["x"] for r in results] == [1.0, 2.0, 3.0]
        assert local["calls"] == 3  # ran in-process, not in workers

    def test_pool_start_failure_falls_back_to_serial(self, monkeypatch):
        import repro.harness.parallel as parallel_mod

        def refuse(*args, **kwargs):
            raise OSError("no forking today")

        monkeypatch.setattr(
            parallel_mod.concurrent.futures, "ProcessPoolExecutor", refuse
        )
        results = ParallelRunner(_deterministic_run, workers=4).map([1, 2])
        assert [r.item for r in results] == [1, 2]
        assert results[0].value == _deterministic_run(1)
