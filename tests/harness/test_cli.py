"""Tests for the experiment CLI."""

import pytest

from repro.harness.__main__ import EXPERIMENTS, main, run_experiment


def test_every_registered_experiment_exists():
    for name, (fn, _) in EXPERIMENTS.items():
        assert callable(fn), name


def test_run_experiment_fig4():
    text = run_experiment("fig4")
    assert "JVM Result Code" in text


def test_run_experiment_with_seed():
    text = run_experiment("fig1", seed=5)
    assert "FIG1" in text


def test_unknown_experiment_exits():
    with pytest.raises(SystemExit):
        run_experiment("nonsense")


def test_main_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig4" in out and "naive_vs_scoped" in out


def test_main_no_args_lists(capsys):
    assert main([]) == 0
    assert "experiments:" in capsys.readouterr().out


def test_main_runs_one(capsys):
    assert main(["time_scope"]) == 0
    assert "EXP-SCOPE-TIME" in capsys.readouterr().out


def test_main_runs_several_in_input_order(capsys):
    assert main(["time_scope", "fig4"]) == 0
    out = capsys.readouterr().out
    assert out.index("EXP-SCOPE-TIME") < out.index("FIG4")


def test_tables_carry_wall_clock_footer():
    assert "wall clock" in run_experiment("time_scope")


def test_main_jobs_parallel_stable_order(capsys):
    """--jobs fans out over processes; output order stays stable."""
    assert main(["fig4", "time_scope", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert out.index("FIG4") < out.index("EXP-SCOPE-TIME")


class TestJobsValidation:
    """--jobs rejects 0/negative/non-integer at argument parsing with a
    clear message, instead of falling through to a confusing
    ProcessPoolExecutor failure (shared ``positive_worker_count`` type)."""

    def _error_text(self, capsys, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2  # argparse usage error, pre-run
        return capsys.readouterr().err.strip().splitlines()[-1]

    def test_jobs_zero_rejected_with_clear_error(self, capsys):
        err = self._error_text(capsys, ["fig4", "--jobs", "0"])
        assert "--jobs" in err and "must be >= 1" in err

    def test_jobs_negative_rejected(self, capsys):
        err = self._error_text(capsys, ["fig4", "--jobs", "-3"])
        assert "must be >= 1" in err

    def test_jobs_non_integer_rejected(self, capsys):
        err = self._error_text(capsys, ["fig4", "--jobs", "two"])
        assert "'two'" in err and "integer" in err

    def test_campaign_jobs_zero_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--jobs", "0"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err.strip().splitlines()[-1]
        assert "--jobs" in err and "must be >= 1" in err

    def test_positive_worker_count_type(self):
        import argparse

        from repro.harness.parallel import positive_worker_count

        assert positive_worker_count("4") == 4
        for bad in ("0", "-1", "x", "1.5"):
            with pytest.raises(argparse.ArgumentTypeError):
                positive_worker_count(bad)


def test_unknown_experiment_among_several_exits():
    with pytest.raises(SystemExit):
        main(["fig4", "nonsense"])


class TestTelemetryJobsConflict:
    """--trace/--metrics/--profile vs --jobs > 1 must fail early with an
    error naming exactly the flags in conflict (the old message blamed
    --trace/--metrics wholesale, even for a --profile-only invocation)."""

    def _error_text(self, capsys, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2  # argparse usage error, pre-run
        # The last stderr line is the error itself (the preceding usage
        # block mentions every flag, conflicting or not).
        return capsys.readouterr().err.strip().splitlines()[-1]

    def test_trace_conflict_names_both_flags(self, capsys, tmp_path):
        err = self._error_text(
            capsys, ["fig4", "--trace", str(tmp_path / "t.jsonl"), "--jobs", "3"]
        )
        assert "--trace" in err
        assert "--jobs 3" in err
        assert "--metrics" not in err and "--profile" not in err

    def test_profile_conflict_names_profile(self, capsys, tmp_path):
        err = self._error_text(
            capsys, ["fig4", "--profile", str(tmp_path / "p.json"), "--jobs", "2"]
        )
        assert "--profile" in err and "--jobs 2" in err
        assert "--trace" not in err

    def test_all_three_flags_listed_together(self, capsys, tmp_path):
        err = self._error_text(
            capsys,
            ["fig4", "--trace", str(tmp_path / "t"), "--metrics",
             str(tmp_path / "m"), "--profile", str(tmp_path / "p"),
             "--jobs", "2"],
        )
        assert "--trace/--metrics/--profile" in err

    def test_telemetry_with_jobs_one_is_fine(self, capsys, tmp_path):
        assert main(["time_scope", "--profile", str(tmp_path / "p.json"),
                     "--jobs", "1"]) == 0


class TestProfileFlag:
    def test_profile_writes_report_and_prints_panel(self, capsys, tmp_path):
        import json

        path = tmp_path / "profile.json"
        assert main(["fig3", "--profile", str(path)]) == 0
        out = capsys.readouterr().out
        assert "where time went" in out
        assert "critical path" in out
        report = json.loads(path.read_text())
        assert report["schema"] == "repro-profile/1"
        assert report["sim"]["events"] > 0

    def test_profile_file_deterministic_after_wall_strip(self, tmp_path):
        import json

        from repro.bench.compare import strip_wall

        reports = []
        for tag in ("a", "b"):
            path = tmp_path / f"p_{tag}.json"
            assert main(["fig3", "--profile", str(path)]) == 0
            reports.append(strip_wall(json.loads(path.read_text())))
        assert reports[0] == reports[1]


def test_federation_experiments_parallel_byte_identical():
    """The PR's determinism acceptance: the churn and flocking
    experiments export byte-identical JSON whether run serially or
    fanned out over worker processes (wall clock stays out of ``data``)."""
    import json

    from repro.harness.__main__ import run_experiments

    names = ["churn", "flocking"]
    serial = run_experiments(names, seed=0, jobs=1)
    fanned = run_experiments(names, seed=0, jobs=4)
    blob = lambda records: json.dumps(
        {r["name"]: r["data"] for r in records}, sort_keys=True
    )
    assert blob(serial) == blob(fanned)
