"""Tests for the experiment CLI."""

import pytest

from repro.harness.__main__ import EXPERIMENTS, main, run_experiment


def test_every_registered_experiment_exists():
    for name, (fn, _) in EXPERIMENTS.items():
        assert callable(fn), name


def test_run_experiment_fig4():
    text = run_experiment("fig4")
    assert "JVM Result Code" in text


def test_run_experiment_with_seed():
    text = run_experiment("fig1", seed=5)
    assert "FIG1" in text


def test_unknown_experiment_exits():
    with pytest.raises(SystemExit):
        run_experiment("nonsense")


def test_main_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig4" in out and "naive_vs_scoped" in out


def test_main_no_args_lists(capsys):
    assert main([]) == 0
    assert "experiments:" in capsys.readouterr().out


def test_main_runs_one(capsys):
    assert main(["time_scope"]) == 0
    assert "EXP-SCOPE-TIME" in capsys.readouterr().out


def test_main_runs_several_in_input_order(capsys):
    assert main(["time_scope", "fig4"]) == 0
    out = capsys.readouterr().out
    assert out.index("EXP-SCOPE-TIME") < out.index("FIG4")


def test_tables_carry_wall_clock_footer():
    assert "wall clock" in run_experiment("time_scope")


def test_main_jobs_parallel_stable_order(capsys):
    """--jobs fans out over processes; output order stays stable."""
    assert main(["fig4", "time_scope", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert out.index("FIG4") < out.index("EXP-SCOPE-TIME")


def test_main_jobs_must_be_positive():
    with pytest.raises(SystemExit):
        main(["fig4", "--jobs", "0"])


def test_unknown_experiment_among_several_exits():
    with pytest.raises(SystemExit):
        main(["fig4", "nonsense"])
