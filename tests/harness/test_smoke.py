"""CLI-path smoke tests: the commands the README advertises must run.

These exercise ``python -m repro.harness`` as a real subprocess (the
exact invocation a user types) plus one in-process parallel replication,
so regressions anywhere along the CLI path -- argument parsing, module
import order, the process fan-out -- are caught by the plain test suite.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.harness.experiments import run_fig1_kernel
from repro.harness.replicate import replicate

REPO = Path(__file__).resolve().parents[2]


def _cli(*args: str) -> subprocess.CompletedProcess:
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.harness", *args],
        capture_output=True, text=True, env=env, timeout=300,
    )


def test_cli_fig4_smoke():
    proc = _cli("fig4")
    assert proc.returncode == 0, proc.stderr
    assert "JVM Result Code" in proc.stdout
    assert "wall clock" in proc.stdout


def test_cli_parallel_jobs_smoke():
    proc = _cli("fig4", "time_scope", "--jobs", "2")
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.index("FIG4") < proc.stdout.index("EXP-SCOPE-TIME")


def _fig1_row(seed: int) -> dict[str, float]:
    result = run_fig1_kernel(seed=seed, n_jobs=4, n_machines=2)
    return {"completed": float(result.completed), "makespan": result.makespan}


def test_parallel_replication_smoke():
    rep = replicate(_fig1_row, seeds=[0, 1, 2, 3], workers=2)
    assert rep.always(lambda row: row["completed"] == 4.0)
    assert len(rep.seed_seconds) == 4
