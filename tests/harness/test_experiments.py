"""Tests for the per-figure experiment runners.

These assert the *shape* of each result -- who wins, what collapses, where
behaviour flips -- which is what the reproduction owes the paper.
"""

import pytest

from repro.core.scope import ErrorScope
from repro.harness import experiments as E


class TestFig1:
    def test_kernel_wiring(self):
        result = E.run_fig1_kernel(n_jobs=4, n_machines=2)
        assert result.completed == 4
        assert result.matches == 4
        assert result.claims_granted == 4
        assert result.shadows_spawned == 4
        assert result.ads_sent > 0
        assert "FIG1" in result.table().render()


class TestFig2:
    def test_two_hop_io(self):
        result = E.run_fig2_java_universe()
        assert result.completed
        assert result.output_written
        assert result.chirp_requests == result.rpc_requests == 5
        assert result.bytes_exec_to_submit > 0
        assert result.bytes_submit_to_exec > 0


class TestFig3:
    def test_every_scope_lands_correctly(self):
        result = E.run_fig3_scopes()
        assert result.all_correct
        scopes = [row.expected_scope for row in result.rows]
        assert scopes == [
            ErrorScope.PROGRAM,
            ErrorScope.VIRTUAL_MACHINE,
            ErrorScope.REMOTE_RESOURCE,
            ErrorScope.LOCAL_RESOURCE,
            ErrorScope.JOB,
        ]


class TestFig4:
    def test_paper_rows_reproduced(self):
        result = E.run_fig4_result_codes()
        # Paper column: 0, x, 1, 1, 1, 1, 1.
        assert result.bare_codes == [0, 5, 1, 1, 1, 1, 1]

    def test_ambiguity_then_recovery(self):
        result = E.run_fig4_result_codes()
        # Five distinct failures collapse onto code 1...
        assert result.bare_codes.count(1) == 5
        # ...but the wrapper tells all seven apart.
        assert result.distinct_wrapper_reports == 7

    def test_wrapper_reports_name_scopes(self):
        result = E.run_fig4_result_codes()
        text = result.table().render()
        for scope in ("virtual-machine", "remote-resource", "local-resource", "job"):
            assert scope in text


class TestNaiveVsScoped:
    @pytest.fixture(scope="class")
    def result(self):
        return E.run_naive_vs_scoped(seed=0, n_jobs=20, n_machines=6)

    def test_scoped_shields_users(self, result):
        """'the hailstorm of error messages abated' (§4)."""
        assert result.scoped.user_visible_incidental < result.naive.user_visible_incidental
        assert result.scoped.user_visible_incidental <= 1

    def test_scoped_delivers_more_correct_results(self, result):
        assert result.scoped.correct_results > result.naive.correct_results

    def test_naive_violates_p1_scoped_does_not(self, result):
        assert result.naive_violations[1] > 0
        assert result.scoped_violations[1] == 0

    def test_naive_violates_p2_p4_scoped_does_not(self, result):
        assert result.naive_violations[2] > 0
        assert result.naive_violations[4] > 0
        assert result.scoped_violations[2] == 0
        assert result.scoped_violations[4] == 0

    def test_scoped_pays_in_retries_not_aggravation(self, result):
        """The cost moves from the human to the system (§7)."""
        assert result.scoped.wasted_attempts >= result.naive.wasted_attempts
        assert result.scoped.postmortems_required < result.naive.postmortems_required

    def test_no_jobs_lost(self, result):
        assert result.naive.unfinished == 0
        assert result.scoped.unfinished == 0


class TestBlackHole:
    @pytest.fixture(scope="class")
    def result(self):
        return E.run_black_hole(seed=0, n_jobs=12, n_machines=6, n_black_holes=2)

    def test_all_defenses_complete_everything(self, result):
        assert all(row.completed == 12 for row in result.rows)

    def test_undefended_pool_wastes_work(self, result):
        """§5: 'continuous waste of CPU and network capacity.'"""
        assert result.row("none").wasted_attempts > 0

    def test_self_test_eliminates_waste(self, result):
        """'the startd simply declines to advertise its Java capability.'"""
        assert result.row("self-test").wasted_attempts == 0

    def test_avoidance_bounds_waste(self, result):
        """Avoidance pays threshold-many failures per black hole, then stops."""
        none_waste = result.row("none").wasted_attempts
        avoid_waste = result.row("avoidance").wasted_attempts
        assert avoid_waste < none_waste
        assert avoid_waste <= 2 * 2  # threshold x black holes

    def test_network_cost_ordering(self, result):
        assert result.row("self-test").network_bytes < result.row("none").network_bytes


class TestNfs:
    @pytest.fixture(scope="class")
    def result(self):
        return E.run_nfs_mounts(outages=(5.0, 60.0, 600.0), soft_timeout=30.0,
                                deadline=120.0)

    def _row(self, result, outage, mode):
        for row in result.rows:
            if row.outage == outage and row.mode == mode:
                return row
        raise KeyError((outage, mode))

    def test_short_outage_everyone_fine(self, result):
        for mode in ("hard", "soft", "per-op deadline"):
            assert self._row(result, 5.0, mode).outcome == "completed"

    def test_hard_mount_hides_long_outage(self, result):
        """Hard: completes eventually, having hidden a 10-minute hang."""
        row = self._row(result, 600.0, "hard")
        assert row.outcome == "completed"
        assert row.elapsed >= 600.0

    def test_soft_mount_exposes_medium_outage(self, result):
        row = self._row(result, 60.0, "soft")
        assert row.outcome == "error ETIMEDOUT"
        assert row.elapsed < 60.0

    def test_per_op_deadline_splits_the_difference(self, result):
        """The paper's wished-for per-program criterion: ride out medium
        outages, fail on long ones."""
        assert self._row(result, 60.0, "per-op deadline").outcome == "completed"
        assert self._row(result, 600.0, "per-op deadline").outcome == "error ETIMEDOUT"


class TestTimeScope:
    def test_escalation_matches_truth(self):
        result = E.run_time_scope()
        assert result.accuracy == 1.0

    def test_short_blips_stay_process_scope(self):
        result = E.run_time_scope(outages=(1.0, 10.0), threshold=60.0)
        assert all(row.assigned == "process" for row in result.rows)

    def test_persistent_outage_escalates(self):
        result = E.run_time_scope(outages=(900.0,), threshold=60.0)
        assert result.rows[0].assigned == "remote-resource"
        assert result.rows[0].decided_after >= 60.0


class TestPrinciples:
    def test_table_mentions_all_principles(self):
        result = E.run_principles(n_jobs=10, n_machines=4)
        text = result.table().render()
        for p in ("P1", "P2", "P3", "P4"):
            assert p in text


class TestEndToEndExperiment:
    def test_layer_catches_what_bare_delivers(self):
        result = E.run_end_to_end(n_jobs=8, corruption_probability=0.3)
        bare = result.row("no end-to-end layer")
        layered = result.row("end-to-end layer")
        assert bare.wrong_outputs_delivered > 0
        assert layered.wrong_outputs_delivered == 0
        assert layered.final_valid_outputs == 8
        assert layered.resubmits > 0


class TestCheckpointExperiment:
    def test_checkpointing_reduces_reexecution(self):
        result = E.run_checkpoint_ablation(n_jobs=4, n_steps=20)
        assert result.row(True).reexecuted_steps < result.row(False).reexecuted_steps
        assert result.row(True).completed == result.row(False).completed == 4


class TestFairShareExperiment:
    def test_small_user_unblocked(self):
        result = E.run_fair_share()
        assert result.row(True).small_user_done_at < result.row(False).small_user_done_at


class TestRetrySweepExperiment:
    def test_knee_exists(self):
        result = E.run_retry_sweep(budgets=(0, 4))
        assert result.row(0).held > 0
        assert result.row(4).completed == result.n_jobs


class TestPreemptionExperiment:
    def test_preemption_serves_the_owner(self):
        result = E.run_preemption()
        none = result.row("no preemption")
        ckpt = result.row("preemption + checkpointing")
        raw = result.row("preemption, no checkpointing")
        assert ckpt.boss_turnaround < none.boss_turnaround
        assert ckpt.peon_steps_executed < raw.peon_steps_executed
        assert none.evictions == 0 and ckpt.evictions >= 1


class TestChurnExperiment:
    def test_backoff_beats_permanent_beats_none(self):
        result = E.run_churn()
        none = result.row("none")
        permanent = result.row("permanent")
        backoff = result.row("backoff")
        # Everyone finishes the workload eventually...
        assert none.completed == permanent.completed == backoff.completed
        # ...but the undefended pool wastes the most executions probing
        # the black hole, and the permanent blacklist never gets the
        # repaired machine back, so backoff wins on makespan.
        assert none.wasted_attempts > backoff.wasted_attempts
        assert backoff.makespan < permanent.makespan < none.makespan
        assert backoff.goodput_rate > permanent.goodput_rate

    def test_only_backoff_readmits_the_healed_site(self):
        result = E.run_churn()
        assert result.row("backoff").readmitted
        assert not result.row("permanent").readmitted

    def test_churn_actually_happened(self):
        result = E.run_churn()
        for row in result.rows:
            assert row.churn_leaves > 0
            assert row.churn_joins > 0


class TestFlockingExperiment:
    def test_flocking_recruits_the_remote_pool(self):
        result = E.run_flocking()
        solitary = result.row("no flocking")
        flocked = result.row("flocking")
        assert solitary.jobs_flocked == 0 and solitary.remote_completions == 0
        assert flocked.jobs_flocked > 0 and flocked.remote_completions > 0
        assert flocked.completed == solitary.completed
        assert flocked.makespan < solitary.makespan

    def test_link_outage_recovers_between_the_extremes(self):
        result = E.run_flocking()
        outage = result.row("flocking + link outage")
        assert outage.flock_links_down >= 1  # the outage was detected
        assert outage.jobs_flocked > 0  # and survived via backoff re-probe
        assert (result.row("flocking").makespan
                < outage.makespan
                < result.row("no flocking").makespan)
