"""Unit tests for the Chirp protocol, auth, proxy, and client library."""

import pytest

from repro.chirp.auth import SECRET_FILENAME, generate_secret, place_secret, read_secret
from repro.chirp.client import CondorIoLibrary
from repro.chirp.protocol import ChirpCode, ChirpReply, ChirpRequest
from repro.chirp.proxy import ChirpProxy
from repro.remoteio.rpc import Credential
from repro.remoteio.server import RemoteIoServer, SyncFsAdapter
from repro.sim.engine import Simulator
from repro.sim.filesystem import LocalFileSystem
from repro.sim.network import Network


class TestProtocol:
    def test_contract_codes(self):
        assert ChirpCode.OK.in_io_contract
        assert ChirpCode.NOT_FOUND.in_io_contract
        assert ChirpCode.NO_SPACE.in_io_contract
        assert not ChirpCode.SERVER_DOWN.in_io_contract
        assert not ChirpCode.CREDENTIAL_EXPIRED.in_io_contract
        assert not ChirpCode.AUTH_FAILED.in_io_contract

    def test_request_reply_shapes(self):
        request = ChirpRequest(op="read", path="/x", secret="s")
        assert request.data == b""
        reply = ChirpReply(ChirpCode.OK, data=b"abc")
        assert reply.code is ChirpCode.OK


class TestAuth:
    def test_secret_deterministic(self):
        assert generate_secret("claim-1") == generate_secret("claim-1")
        assert generate_secret("claim-1") != generate_secret("claim-2")
        assert len(generate_secret("x")) == 32

    def test_place_and_read(self):
        fs = LocalFileSystem()
        fs.mkdir("/scratch/j", parents=True)
        secret = generate_secret("c")
        path = place_secret(fs, "/scratch/j", secret)
        assert path.endswith(SECRET_FILENAME)
        assert read_secret(fs, "/scratch/j") == secret

    def test_read_missing_secret_is_empty(self):
        fs = LocalFileSystem()
        fs.mkdir("/scratch/j", parents=True)
        assert read_secret(fs, "/scratch/j") == ""


class ProxyRig:
    """Proxy + server + raw client connection, no JVM in the way."""

    def __init__(self, secret="s3cret", credential=None):
        self.sim = Simulator()
        self.net = Network(self.sim)
        self.fs = LocalFileSystem("home", capacity=10_000, sim=self.sim)
        self.fs.mkdir("/home", parents=True)
        self.fs.write_file("/home/f.dat", b"content")
        self.server = RemoteIoServer(
            self.sim, self.net, "submit", 7000, SyncFsAdapter(self.fs)
        )
        self.proxy = ChirpProxy(
            self.sim, self.net, "exec", 9000, secret, "submit", 7000,
            credential=credential or Credential("u"), rpc_timeout=5.0,
        )

    def request(self, request: ChirpRequest):
        result = []

        def client(sim):
            conn = yield from self.net.connect("exec", "exec", 9000)
            conn.send(request)
            reply = yield from conn.recv(timeout=30.0)
            result.append(reply)
            conn.close()

        proc = self.sim.spawn(client(self.sim))
        while not result and self.sim.step():
            pass
        return result[0]


class TestProxy:
    def test_read_forwarded(self):
        rig = ProxyRig()
        reply = rig.request(ChirpRequest("read", "/home/f.dat", secret="s3cret"))
        assert reply.code is ChirpCode.OK
        assert reply.data == b"content"
        assert rig.proxy.requests_handled == 1
        assert rig.server.requests_served == 1

    def test_write_forwarded(self):
        rig = ProxyRig()
        reply = rig.request(ChirpRequest("write", "/home/new", b"data", secret="s3cret"))
        assert reply.code is ChirpCode.OK
        assert rig.fs.read_file("/home/new") == b"data"

    def test_stat_forwarded(self):
        rig = ProxyRig()
        assert rig.request(ChirpRequest("stat", "/home/f.dat", secret="s3cret")).code is ChirpCode.OK
        assert rig.request(ChirpRequest("stat", "/home/none", secret="s3cret")).code is ChirpCode.NOT_FOUND

    def test_bad_secret_rejected_without_forwarding(self):
        rig = ProxyRig()
        reply = rig.request(ChirpRequest("read", "/home/f.dat", secret="wrong"))
        assert reply.code is ChirpCode.AUTH_FAILED
        assert rig.server.requests_served == 0

    def test_unknown_op_invalid(self):
        rig = ProxyRig()
        reply = rig.request(ChirpRequest("unlink", "/home/f.dat", secret="s3cret"))
        assert reply.code is ChirpCode.INVALID_REQUEST

    def test_non_chirp_message_invalid(self):
        rig = ProxyRig()
        reply = rig.request("not a chirp request")  # type: ignore[arg-type]
        assert reply.code is ChirpCode.INVALID_REQUEST

    def test_enoent_maps_to_not_found(self):
        rig = ProxyRig()
        reply = rig.request(ChirpRequest("read", "/home/missing", secret="s3cret"))
        assert reply.code is ChirpCode.NOT_FOUND

    def test_enospc_maps_to_no_space(self):
        rig = ProxyRig()
        reply = rig.request(
            ChirpRequest("write", "/home/big", b"x" * 20_000, secret="s3cret")
        )
        assert reply.code is ChirpCode.NO_SPACE

    def test_offline_home_maps_to_server_down(self):
        rig = ProxyRig()
        rig.fs.set_online(False)
        reply = rig.request(ChirpRequest("read", "/home/f.dat", secret="s3cret"))
        assert reply.code is ChirpCode.SERVER_DOWN

    def test_expired_credential_maps_through(self):
        rig = ProxyRig(credential=Credential("u", expires_at=0.0))
        reply = rig.request(ChirpRequest("read", "/home/f.dat", secret="s3cret"))
        assert reply.code is ChirpCode.CREDENTIAL_EXPIRED

    def test_partition_to_shadow_times_out(self):
        rig = ProxyRig()
        rig.net.partition("exec", "submit")
        reply = rig.request(ChirpRequest("read", "/home/f.dat", secret="s3cret"))
        assert reply.code is ChirpCode.TIMED_OUT

    def test_server_shutdown_maps_to_server_down(self):
        rig = ProxyRig()
        rig.server.close()
        reply = rig.request(ChirpRequest("read", "/home/f.dat", secret="s3cret"))
        assert reply.code is ChirpCode.SERVER_DOWN

    def test_proxy_reconnects_after_break(self):
        rig = ProxyRig()
        assert rig.request(ChirpRequest("read", "/home/f.dat", secret="s3cret")).code is ChirpCode.OK
        # Break the proxy-shadow channel behind the proxy's back.
        rig.proxy._rpc.connection.break_()
        rig.sim.run(until=rig.sim.now + 1.0)
        reply = rig.request(ChirpRequest("read", "/home/f.dat", secret="s3cret"))
        assert reply.code in (ChirpCode.OK, ChirpCode.SERVER_DOWN)
        # And the next one definitely works (fresh connection).
        reply = rig.request(ChirpRequest("read", "/home/f.dat", secret="s3cret"))
        assert reply.code is ChirpCode.OK


class TestClientLibraryModes:
    def test_bad_mode_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CondorIoLibrary(sim, Network(sim), "h", 1, "s", mode="wat")

    def test_naive_interface_is_generic(self):
        sim = Simulator()
        lib = CondorIoLibrary(sim, Network(sim), "h", 1, "s", mode="naive")
        assert all(op.generic for op in lib.interface.operations())

    def test_scoped_interface_is_finite(self):
        sim = Simulator()
        lib = CondorIoLibrary(sim, Network(sim), "h", 1, "s", mode="scoped")
        ops = {op.name: op for op in lib.interface.operations()}
        assert not any(op.generic for op in ops.values())
        assert ops["read"].errors == {"FileNotFound", "AccessDenied"}
        assert ops["write"].errors == {"DiskFull", "AccessDenied"}
