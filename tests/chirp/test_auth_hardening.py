"""Constant-time secret comparison and the proxy's AUTH_FAILED path."""

from repro.chirp.auth import generate_secret, read_secret, secrets_equal
from repro.chirp.protocol import ChirpCode, ChirpReply, ChirpRequest
from repro.chirp.proxy import ChirpProxy
from repro.remoteio.rpc import Credential, RpcRequest
from repro.remoteio.server import RemoteIoServer, SyncFsAdapter
from repro.sim.engine import Simulator
from repro.sim.filesystem import LocalFileSystem
from repro.sim.network import Network


class TestSecretsEqual:
    def test_equal_secrets(self):
        assert secrets_equal("s3cret", "s3cret")

    def test_unequal_same_length(self):
        assert not secrets_equal("s3cret", "s3creT")

    def test_unequal_lengths(self):
        assert not secrets_equal("s3", "s3cret")
        assert not secrets_equal("s3cret-and-more", "s3cret")

    def test_empty_vs_real(self):
        # The read_secret fallback for a missing file is "" -- it must
        # never compare equal to a real secret.
        assert not secrets_equal("", generate_secret("claim"))
        assert secrets_equal("", "")


def make_proxy(secret="s3cret"):
    sim = Simulator()
    net = Network(sim)
    fs = LocalFileSystem("home", capacity=10_000, sim=sim)
    fs.mkdir("/home", parents=True)
    RemoteIoServer(sim, net, "submit", 7000, SyncFsAdapter(fs))
    return ChirpProxy(
        sim, net, "exec", 9000, secret, "submit", 7000,
        credential=Credential("u"), rpc_timeout=5.0,
    )


class TestProxyAuthCheck:
    def _prepare(self, presented, expected="s3cret"):
        proxy = make_proxy(secret=expected)
        return proxy._prepare(
            ChirpRequest(op="read", path="/home/f.dat", secret=presented)
        )

    def test_wrong_secret_is_auth_failed(self):
        prepared = self._prepare("guess")
        assert isinstance(prepared, ChirpReply)
        assert prepared.code is ChirpCode.AUTH_FAILED

    def test_missing_secret_is_auth_failed(self):
        # A job whose scratch lost the secret file presents "" (the
        # read_secret fallback); the proxy refuses it the same way.
        scratch = LocalFileSystem()
        scratch.mkdir("/scratch/j", parents=True)
        assert read_secret(scratch, "/scratch/j") == ""
        prepared = self._prepare(read_secret(scratch, "/scratch/j"))
        assert isinstance(prepared, ChirpReply)
        assert prepared.code is ChirpCode.AUTH_FAILED

    def test_right_secret_translates_to_rpc(self):
        prepared = self._prepare("s3cret")
        assert isinstance(prepared, RpcRequest)
        assert prepared.op == "read_file"
