"""Standard Universe checkpointing and eviction (§2.1: Condor's
"transparent checkpointing" and "process migration")."""

import pytest

from repro.condor import Job, JobState, Pool, PoolConfig, ProgramImage, Universe
from repro.condor.daemons.config import CondorConfig
from repro.core.scope import ErrorScope
from repro.faults import FaultInjector, OwnerActivity
from repro.jvm.program import JavaProgram, Step

MB = 2**20


def standard_job(job_id="1.0", n_steps=20, step_work=5.0):
    program = JavaProgram(steps=[Step.compute(step_work) for _ in range(n_steps)])
    return Job(
        job_id,
        owner="thain",
        universe=Universe.STANDARD,
        image=ProgramImage(f"job{job_id}.bin", program=program),
    )


def make_pool(checkpointing=True, n=2):
    condor = CondorConfig(error_mode="scoped", checkpointing=checkpointing)
    return Pool(PoolConfig(n_machines=n, condor=condor))


class TestCheckpointing:
    def test_clean_run_completes_and_counts_steps(self):
        pool = make_pool()
        job = standard_job(n_steps=10)
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.COMPLETED
        assert job.steps_executed == 10
        assert job.checkpoint == 10

    def test_eviction_is_remote_resource_scope(self):
        pool = make_pool()
        job = standard_job(n_steps=40, step_work=5.0)
        pool.submit(job)
        injector = FaultInjector(pool)
        injector.schedule(OwnerActivity("exec000"), at=60.0, until=200.0)
        injector.schedule(OwnerActivity("exec001"), at=60.0, until=200.0)
        pool.run_until_done(max_time=100_000)
        assert job.state is JobState.COMPLETED
        evictions = [a for a in job.attempts if a.error_name.startswith("Evicted")]
        assert evictions
        assert evictions[0].error_scope is ErrorScope.REMOTE_RESOURCE

    def test_checkpoint_resumes_where_it_left_off(self):
        """With checkpointing, an evicted job re-executes almost nothing."""
        pool = make_pool(checkpointing=True)
        job = standard_job(n_steps=30, step_work=5.0)
        pool.submit(job)
        injector = FaultInjector(pool)
        injector.schedule(OwnerActivity("exec000"), at=60.0, until=120.0)
        injector.schedule(OwnerActivity("exec001"), at=60.0, until=120.0)
        pool.run_until_done(max_time=100_000)
        assert job.state is JobState.COMPLETED
        # Each step checkpoints, so at most one step is re-executed per
        # eviction.
        evictions = sum(1 for a in job.attempts if a.error_name.startswith("Evicted"))
        assert job.steps_executed <= 30 + evictions

    def test_without_checkpointing_work_is_lost(self):
        pool = make_pool(checkpointing=False)
        job = standard_job(n_steps=30, step_work=5.0)
        pool.submit(job)
        injector = FaultInjector(pool)
        injector.schedule(OwnerActivity("exec000"), at=60.0, until=120.0)
        injector.schedule(OwnerActivity("exec001"), at=60.0, until=120.0)
        pool.run_until_done(max_time=100_000)
        assert job.state is JobState.COMPLETED
        assert job.checkpoint == 0 or job.checkpoint == 30  # never used to resume
        # The evicted attempt's progress was thrown away and re-executed.
        assert job.steps_executed > 30

    def test_checkpointing_beats_no_checkpointing(self):
        """The ablation shape: same eviction schedule, less wasted work."""

        def run(checkpointing):
            pool = make_pool(checkpointing=checkpointing)
            job = standard_job(n_steps=30, step_work=5.0)
            pool.submit(job)
            injector = FaultInjector(pool)
            injector.schedule(OwnerActivity("exec000"), at=60.0, until=120.0)
            injector.schedule(OwnerActivity("exec001"), at=60.0, until=120.0)
            pool.run_until_done(max_time=100_000)
            assert job.state is JobState.COMPLETED
            return job.steps_executed

        assert run(True) < run(False)

    def test_checkpoint_interval_coarsens_commits(self):
        condor = CondorConfig(error_mode="scoped", checkpoint_every_steps=5)
        pool = Pool(PoolConfig(n_machines=1, condor=condor))
        job = standard_job(n_steps=12)
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.COMPLETED
        # Final notice fires at completion regardless of interval.
        assert job.checkpoint == 12

    def test_machine_with_owner_active_not_matched(self):
        pool = make_pool(n=1)
        FaultInjector(pool).schedule(OwnerActivity("exec000"), at=0.0, until=500.0)
        job = standard_job(n_steps=2, step_work=1.0)
        pool.submit(job)
        pool.run(until=300.0)
        assert job.state is JobState.IDLE  # policy FALSE refuses matches
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.COMPLETED  # owner left; job ran

    def test_resume_restores_heap_state(self):
        """A resumed program re-acquires the heap its checkpoint held."""
        from repro.jvm.machine import Jvm
        from repro.chirp.client import LocalIoLibrary
        from repro.sim.engine import Simulator
        from repro.sim.machine import Machine

        sim = Simulator()
        machine = Machine(sim, "m")
        machine.scratch.mkdir("/scratch/j", parents=True)
        program = JavaProgram(
            steps=[Step.allocate(8 * MB), Step.compute(1.0), Step.free(8 * MB),
                   Step.compute(1.0)]
        )
        jvm = Jvm(sim, machine)
        io = LocalIoLibrary(machine.scratch, "/scratch/j")
        image = ProgramImage("x", program=program)
        proc = machine.processes.spawn(
            "resume", jvm.run_bare(image, program, io, 32 * MB, start_at=2)
        )
        sim.run()
        assert proc.status.code == 0
        assert machine.memory_used == 0  # freed the restored heap + base
