"""Pool-level extras: NFS-mounted home directories and operator tools."""

import pytest

from repro.condor import Job, JobState, Pool, PoolConfig, ProgramImage, Universe
from repro.condor.daemons.config import CondorConfig
from repro.condor.tools import condor_q, condor_status, error_scope_report
from repro.faults import FaultInjector, HomeFilesystemOffline, MisconfiguredJvm
from repro.jvm.program import JavaProgram, Step


def java_job(job_id="1.0", steps=None):
    program = JavaProgram(steps=steps or [Step.compute(5.0)])
    return Job(job_id, owner="thain", universe=Universe.JAVA,
               image=ProgramImage(f"j{job_id}.class", program=program))


class TestNfsHomePool:
    @pytest.mark.parametrize("mode", ["hard", "soft"])
    def test_pool_with_nfs_home_runs_jobs(self, mode):
        pool = Pool(PoolConfig(n_machines=2, home_nfs_mode=mode))
        pool.home_fs.write_file("/home/user/in.dat", b"x")
        job = java_job(steps=[Step.read("/home/user/in.dat"), Step.exit(0)])
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.COMPLETED

    def test_soft_mounted_home_outage_is_local_resource(self):
        from repro.core.scope import ErrorScope

        pool = Pool(PoolConfig(
            n_machines=2, home_nfs_mode="soft", home_nfs_soft_timeout=5.0,
        ))
        pool.home_fs.write_file("/home/user/in.dat", b"x")
        FaultInjector(pool).schedule(HomeFilesystemOffline(), at=0.0, until=300.0)
        job = java_job(steps=[Step.read("/home/user/in.dat"), Step.exit(0)])
        pool.submit(job)
        pool.run_until_done(max_time=100_000)
        assert job.state is JobState.COMPLETED
        failed = [a for a in job.attempts if a.error_scope is not None]
        assert failed and failed[0].error_scope is ErrorScope.LOCAL_RESOURCE


class TestOperatorTools:
    def _run_pool(self):
        pool = Pool(PoolConfig(n_machines=2))
        FaultInjector(pool).schedule(MisconfiguredJvm("exec000"))
        jobs = [java_job(f"1.{i}") for i in range(3)]
        for job in jobs:
            pool.submit(job)
        pool.run_until_done(max_time=100_000)
        return pool

    def test_condor_status_lists_machines(self):
        pool = self._run_pool()
        text = condor_status(pool)
        assert "exec000" in text and "exec001" in text
        assert "condor_status" in text

    def test_condor_q_lists_jobs_with_outcomes(self):
        pool = self._run_pool()
        text = condor_q(pool)
        assert "1.0" in text and "1.2" in text
        assert "completed" in text

    def test_error_scope_report_counts_failures(self):
        pool = self._run_pool()
        text = error_scope_report(pool)
        assert "remote-resource" in text

    def test_error_scope_report_empty_pool(self):
        pool = Pool(PoolConfig(n_machines=1))
        assert "(none)" in error_scope_report(pool)

    def test_condor_history_lists_attempts(self):
        from repro.condor.tools import condor_history

        pool = self._run_pool()
        text = condor_history(pool)
        assert "attempt" in text
        assert "completed(exit=0)" in text
        # The misconfigured machine shows up as a scoped failure row.
        assert "remote-resource" in text

    def test_timeline_renders_marks(self):
        from repro.condor.tools import timeline

        pool = self._run_pool()
        text = timeline(pool, width=40)
        assert "#" in text  # successful execution spans
        assert "x" in text  # the failed attempts on exec000
        assert "1.0" in text and "1.2" in text

    def test_timeline_empty_pool(self):
        from repro.condor.tools import timeline

        pool = Pool(PoolConfig(n_machines=1))
        assert timeline(pool) == "(no attempts recorded)"
