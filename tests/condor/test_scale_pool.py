"""Tier-1 smoke and slow full-scale runs of the pool-scale benchmark.

The benchmark module owns the workload (adversarial ads included); these
tests pin its correctness properties at two sizes:

- a smoke size that runs in well under a second in tier-1, asserting the
  indexed kernel and the reference scan negotiate identical pools;
- the headline 10k x 100k case behind the ``slow`` marker, so the full
  configuration stays runnable as a test (CI tracks its wall time
  through the committed benchmark baseline instead).
"""

import pytest

from benchmarks.bench_scale_pool import _run_indexed, _run_reference_scan


def test_smoke_pool_indexed_equals_scan():
    indexed = _run_indexed(120, 240, 3)
    scan = _run_reference_scan(120, 240, 3)
    assert indexed == scan
    assert indexed > 200  # the faulty ads must not hollow out the pool


@pytest.mark.slow
def test_full_scale_pool():
    matches = _run_indexed(10_000, 100_000, 16)
    assert matches > 90_000
