"""Tests for the ClassAd language: lexer, parser, evaluation, matching."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.condor.classads import (
    ClassAd,
    LexError,
    ParseError,
    match,
    parse,
    rank,
    symmetric_match,
)
from repro.condor.classads.expr import (
    EvalContext,
    V_ERROR,
    V_FALSE,
    V_TRUE,
    V_UNDEFINED,
    ValueType,
)


def ev(source, my=None, target=None):
    return parse(source).eval(EvalContext(my=my, target=target))


class TestLexerParser:
    def test_integer_literal(self):
        assert ev("42").payload == 42

    def test_real_literal(self):
        assert ev("3.5").payload == 3.5

    def test_scientific_notation(self):
        assert ev("1e3").payload == 1000.0
        assert ev("2.5e-1").payload == 0.25

    def test_string_literal(self):
        assert ev('"hello"').payload == "hello"

    def test_string_escape(self):
        assert ev('"say \\"hi\\""').payload == 'say "hi"'

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            parse('"oops')

    def test_keywords_case_insensitive(self):
        assert ev("TRUE") is V_TRUE
        assert ev("false") is V_FALSE
        assert ev("Undefined") is V_UNDEFINED
        assert ev("ERROR") is V_ERROR

    def test_bad_character(self):
        with pytest.raises(LexError):
            parse("a @ b")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("1 2")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse("(1 + 2")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse("")

    def test_precedence(self):
        assert ev("2 + 3 * 4").payload == 14
        assert ev("(2 + 3) * 4").payload == 20
        assert ev("2 < 3 && 3 < 2") is V_FALSE
        assert ev("1 + 1 == 2") is V_TRUE

    def test_unary_minus(self):
        assert ev("-5").payload == -5
        assert ev("3 - -2").payload == 5

    def test_not(self):
        assert ev("!TRUE") is V_FALSE
        assert ev("!!TRUE") is V_TRUE


class TestArithmetic:
    def test_integer_ops(self):
        assert ev("7 / 2").payload == 3
        assert ev("7 % 3").payload == 1
        assert ev("-7 / 2").payload == -3  # C-style truncation

    def test_real_promotion(self):
        assert ev("7 / 2.0").payload == 3.5
        assert ev("1 + 0.5").payload == 1.5

    def test_division_by_zero_is_error(self):
        assert ev("1 / 0") is V_ERROR
        assert ev("1 % 0") is V_ERROR
        assert ev("1.0 / 0") is V_ERROR

    def test_string_concatenation(self):
        assert ev('"foo" + "bar"').payload == "foobar"

    def test_arith_on_string_is_error(self):
        assert ev('"foo" * 2') is V_ERROR

    def test_undefined_propagates(self):
        assert ev("1 + missing").is_undefined

    def test_error_dominates_undefined(self):
        assert ev("missing + 1/0") is V_ERROR


class TestComparison:
    def test_numeric(self):
        assert ev("3 > 2") is V_TRUE
        assert ev("2.5 <= 2.5") is V_TRUE
        assert ev("3 == 3.0") is V_TRUE

    def test_string_equality_case_insensitive(self):
        assert ev('"LINUX" == "linux"') is V_TRUE
        assert ev('"a" < "b"') is V_TRUE

    def test_mixed_types_error(self):
        assert ev('1 == "1"') is V_ERROR

    def test_undefined_comparison(self):
        assert ev("missing == 1").is_undefined

    def test_meta_equality_pierces_undefined(self):
        assert ev("missing =?= UNDEFINED") is V_TRUE
        assert ev("missing =!= UNDEFINED") is V_FALSE
        assert ev("1 =?= UNDEFINED") is V_FALSE
        assert ev("ERROR =?= ERROR") is V_TRUE

    def test_meta_equality_same_type_and_value(self):
        assert ev("1 =?= 1") is V_TRUE
        assert ev('"a" =?= "a"') is V_TRUE
        assert ev('"a" =?= "A"') is V_FALSE  # case-sensitive, unlike ==
        assert ev('1 =?= "1"') is V_FALSE


class TestThreeValuedLogic:
    def test_false_dominates_and(self):
        assert ev("FALSE && missing") is V_FALSE
        assert ev("missing && FALSE") is V_FALSE
        assert ev("FALSE && ERROR") is V_FALSE

    def test_true_dominates_or(self):
        assert ev("TRUE || missing") is V_TRUE
        assert ev("missing || TRUE") is V_TRUE
        assert ev("TRUE || ERROR") is V_TRUE

    def test_undefined_taints_and(self):
        assert ev("TRUE && missing").is_undefined
        assert ev("missing || FALSE").is_undefined

    def test_error_beats_undefined(self):
        assert ev("missing && ERROR") is V_ERROR
        assert ev("missing || ERROR") is V_ERROR

    def test_numbers_coerce_to_bool(self):
        assert ev("1 && TRUE") is V_TRUE
        assert ev("0 || FALSE") is V_FALSE

    def test_string_in_logic_is_error(self):
        assert ev('"yes" && TRUE') is V_ERROR


class TestFunctions:
    def test_if_then_else(self):
        assert ev('ifThenElse(2 > 1, "yes", "no")').payload == "yes"
        assert ev("ifThenElse(missing, 1, 2)").is_undefined

    def test_is_undefined_is_error(self):
        assert ev("isUndefined(missing)") is V_TRUE
        assert ev("isUndefined(3)") is V_FALSE
        assert ev("isError(1/0)") is V_TRUE

    def test_numeric_functions(self):
        assert ev("floor(2.7)").payload == 2
        assert ev("ceiling(2.1)").payload == 3
        assert ev("round(2.5)").payload == 2  # banker's rounding via Python
        assert ev("abs(-4)").payload == 4

    def test_string_functions(self):
        assert ev('toUpper("abc")').payload == "ABC"
        assert ev('toLower("ABC")').payload == "abc"
        assert ev('size("hello")').payload == 5
        assert ev('strcmp("a", "b")').payload == -1
        assert ev('strcmp("a", "a")').payload == 0

    def test_string_list_member(self):
        assert ev('stringListMember("java", "mpi, java, pvm")') is V_TRUE
        assert ev('stringListMember("perl", "mpi, java, pvm")') is V_FALSE

    def test_conversions(self):
        assert ev('int("42")').payload == 42
        assert ev("int(3.9)").payload == 3
        assert ev('real("2.5")').payload == 2.5
        assert ev("string(5)").payload == "5"
        assert ev('int("abc")') is V_ERROR

    def test_strcat(self):
        assert ev('strcat("a", 1, "-", 2.5)').payload == "a1-2.5"
        assert ev('strcat("x", missing)').is_undefined

    def test_substr(self):
        assert ev('substr("condor", 2)').payload == "ndor"
        assert ev('substr("condor", 0, 3)').payload == "con"
        assert ev('substr("condor", -3)').payload == "dor"
        assert ev('substr("condor", 1, -1)').payload == "ondo"
        assert ev('substr(5, 0)') is V_ERROR

    def test_min_max(self):
        assert ev("min(3, 1, 2)").payload == 1
        assert ev("max(3, 1, 2.5)").payload == 3
        assert ev("min()") is V_ERROR
        assert ev('min(1, "x")') is V_ERROR
        assert ev("max(1, missing)").is_undefined

    def test_pow(self):
        assert ev("pow(2, 10)").payload == 1024
        assert ev("pow(4, 0.5)").payload == 2.0
        assert ev('pow("a", 2)') is V_ERROR
        assert ev("pow(0, -1)") is V_ERROR

    def test_unknown_function_is_error(self):
        assert ev("nosuchfn(1)") is V_ERROR

    def test_wrong_arity_is_error(self):
        assert ev("floor(1, 2)") is V_ERROR


class TestAttrRefs:
    def test_self_lookup(self):
        ad = ClassAd({"memory": 128})
        assert ad.eval("memory").payload == 128

    def test_case_insensitive(self):
        ad = ClassAd({"Memory": 128})
        assert ad.eval("MEMORY").payload == 128

    def test_missing_is_undefined(self):
        assert ClassAd().eval("nope").is_undefined

    def test_chained_attributes(self):
        ad = ClassAd()
        ad.set_expr("a", "b * 2")
        ad["b"] = 21
        assert ad.eval("a").payload == 42

    def test_circular_reference_is_error(self):
        ad = ClassAd()
        ad.set_expr("a", "b")
        ad.set_expr("b", "a")
        assert ad.eval("a") is V_ERROR

    def test_self_circular_is_error(self):
        ad = ClassAd()
        ad.set_expr("x", "x + 1")
        assert ad.eval("x") is V_ERROR

    def test_my_and_target_qualifiers(self):
        mine = ClassAd({"memory": 64})
        theirs = ClassAd({"memory": 256})
        mine.set_expr("cmp", "MY.memory < TARGET.memory")
        assert mine.eval("cmp", target=theirs) is V_TRUE

    def test_other_is_alias_for_target(self):
        mine = ClassAd()
        theirs = ClassAd({"disk": 100})
        mine.set_expr("d", "OTHER.disk")
        assert mine.eval("d", target=theirs).payload == 100

    def test_unqualified_falls_through_to_target(self):
        mine = ClassAd()
        theirs = ClassAd({"arch": "intel"})
        mine.set_expr("req", 'arch == "INTEL"')
        assert mine.eval("req", target=theirs) is V_TRUE

    def test_target_attr_evaluates_in_target_frame(self):
        """An attribute fetched from TARGET must resolve its own references
        in the target ad, not the referencing ad."""
        mine = ClassAd({"base": 1})
        theirs = ClassAd({"base": 10})
        theirs.set_expr("derived", "base * 2")
        mine.set_expr("probe", "TARGET.derived")
        assert mine.eval("probe", target=theirs).payload == 20

    def test_value_helper(self):
        ad = ClassAd({"x": 5})
        assert ad.value("x") == 5
        assert ad.value("missing", default="dflt") == "dflt"

    def test_external_refs(self):
        expr = parse('MY.memory > 10 && toUpper(arch) == "INTEL" && disk + 1 > 0')
        assert expr.external_refs() == {"memory", "arch", "disk"}


class TestMatching:
    def _job_ad(self):
        job = ClassAd({"imagesize": 28, "owner": "thain"})
        job.set_expr("requirements", 'TARGET.arch == "intel" && TARGET.memory >= MY.imagesize')
        job.set_expr("rank", "TARGET.memory")
        return job

    def _machine_ad(self, memory=128):
        machine = ClassAd({"arch": "intel", "memory": memory, "opsys": "linux"})
        machine.set_expr("requirements", "TARGET.imagesize <= MY.memory")
        machine.set_expr("rank", "0")
        return machine

    def test_symmetric_match_succeeds(self):
        assert symmetric_match(self._job_ad(), self._machine_ad())

    def test_match_fails_on_capacity(self):
        assert not symmetric_match(self._job_ad(), self._machine_ad(memory=16))

    def test_match_is_directional(self):
        job, machine = self._job_ad(), self._machine_ad(memory=16)
        assert not match(job, machine)  # memory >= imagesize fails
        assert match(machine, job) is False  # 28 <= 16 fails too

    def test_missing_requirements_rejects(self):
        assert not match(ClassAd(), ClassAd())

    def test_undefined_requirements_rejects(self):
        job = ClassAd()
        job.set_expr("requirements", "TARGET.nonexistent > 5")
        assert not match(job, ClassAd())

    def test_error_requirements_rejects(self):
        job = ClassAd()
        job.set_expr("requirements", "1 / 0")
        assert not match(job, self._machine_ad())

    def test_rank_ordering(self):
        job = self._job_ad()
        small, big = self._machine_ad(64), self._machine_ad(512)
        assert rank(job, big) > rank(job, small)

    def test_rank_defaults_to_zero(self):
        assert rank(ClassAd(), ClassAd()) == 0.0
        bad = ClassAd()
        bad.set_expr("rank", '"high"')
        assert rank(bad, ClassAd()) == 0.0

    def test_copy_and_update(self):
        a = ClassAd({"x": 1})
        b = a.copy()
        b["x"] = 2
        assert a.eval("x").payload == 1
        a.update(b)
        assert a.eval("x").payload == 2

    def test_render_is_stable(self):
        ad = ClassAd({"b": 2, "a": 1})
        text = ad.render()
        assert text.index("a =") < text.index("b =")
        assert ClassAd().render() == "[ ]"


class TestProperties:
    @given(st.integers(min_value=-10**6, max_value=10**6), st.integers(min_value=-10**6, max_value=10**6))
    def test_addition_matches_python(self, a, b):
        assert ev(f"{a} + {b}").payload == a + b if a + b >= 0 else True
        # Negative literals parse as unary minus; evaluate both ways.
        val = ev(f"({a}) + ({b})")
        assert val.payload == a + b

    @given(st.integers(min_value=-1000, max_value=1000))
    def test_meta_identity(self, n):
        assert ev(f"({n}) =?= ({n})") is V_TRUE

    @given(st.sampled_from(["TRUE", "FALSE", "UNDEFINED", "ERROR"]),
           st.sampled_from(["TRUE", "FALSE", "UNDEFINED", "ERROR"]))
    def test_and_or_duality(self, a, b):
        """De Morgan holds in ClassAd three-valued logic."""
        lhs = ev(f"!({a} && {b})")
        rhs = ev(f"(!{a}) || (!{b})")
        assert lhs.type == rhs.type and lhs.payload == rhs.payload

    @given(st.text(alphabet="abcdefgh", min_size=1, max_size=8))
    def test_attr_name_round_trip(self, name):
        ad = ClassAd({name: 7})
        assert ad.eval(name.upper()).payload == 7

    @given(st.integers(min_value=0, max_value=100), st.integers(min_value=0, max_value=100))
    def test_comparison_total(self, a, b):
        """Exactly one of <, ==, > holds for any two integers."""
        results = [ev(f"{a} < {b}"), ev(f"{a} == {b}"), ev(f"{a} > {b}")]
        assert sum(1 for r in results if r is V_TRUE) == 1
