"""Rank-based preemption: the owner's Rank expression decides who runs."""

import pytest

from repro.condor import Job, JobState, Pool, PoolConfig, ProgramImage, Universe
from repro.condor.daemons.config import CondorConfig
from repro.jvm.program import JavaProgram, Step
from repro.sim.machine import OwnerPolicy

MB = 2**20

BOSS_FIRST = OwnerPolicy(rank_expr='ifThenElse(TARGET.owner == "boss", 10, 1)')


def job(job_id, owner, work=100.0, universe=Universe.JAVA, n_steps=1):
    steps = [Step.compute(work / n_steps) for _ in range(n_steps)]
    return Job(job_id, owner=owner, universe=universe,
               image=ProgramImage(f"{job_id}.bin", program=JavaProgram(steps=steps)))


def preemptive_pool(n_extra_machines=0, checkpointing=True):
    condor = CondorConfig(error_mode="scoped", preemption=True,
                          checkpointing=checkpointing)
    pool = Pool(PoolConfig(n_machines=n_extra_machines, condor=condor))
    pool.add_machine("prized", policy=BOSS_FIRST, memory=1024 * MB)
    return pool


class TestPreemption:
    def test_boss_job_preempts_peon(self):
        pool = preemptive_pool()
        peon = job("1.0", "peon", work=500.0)
        pool.submit(peon)
        pool.run(until=60.0)
        assert peon.state is JobState.RUNNING
        boss = job("2.0", "boss", work=20.0)
        pool.submit(boss)
        pool.run_until_done(max_time=200_000)
        assert boss.state is JobState.COMPLETED
        assert peon.state is JobState.COMPLETED
        evictions = [a for a in peon.attempts if a.error_name.startswith("Evicted")]
        assert evictions, "the peon should have been preempted"
        # The boss ran while the peon was out.
        assert boss.attempts[0].ended < peon.attempts[-1].ended

    def test_no_preemption_without_config(self):
        condor = CondorConfig(error_mode="scoped", preemption=False)
        pool = Pool(PoolConfig(n_machines=0, condor=condor))
        pool.add_machine("prized", policy=BOSS_FIRST, memory=1024 * MB)
        peon = job("1.0", "peon", work=200.0)
        pool.submit(peon)
        pool.run(until=60.0)
        boss = job("2.0", "boss", work=20.0)
        pool.submit(boss)
        pool.run_until_done(max_time=200_000)
        # Boss waited: no eviction happened.
        assert all(not a.error_name.startswith("Evicted") for a in peon.attempts)
        assert boss.attempts[0].started >= peon.attempts[0].ended

    def test_equal_rank_does_not_churn(self):
        """Strictly-greater rank is required: equals never preempt."""
        pool = preemptive_pool()
        first = job("1.0", "peon", work=200.0)
        pool.submit(first)
        pool.run(until=60.0)
        second = job("2.0", "peon2", work=20.0)  # same rank (1) as peon
        pool.submit(second)
        pool.run_until_done(max_time=200_000)
        assert all(not a.error_name.startswith("Evicted") for a in first.attempts)

    def test_preempted_standard_job_resumes_from_checkpoint(self):
        pool = preemptive_pool()
        peon = job("1.0", "peon", work=400.0, universe=Universe.STANDARD, n_steps=20)
        pool.submit(peon)
        pool.run(until=150.0)
        assert peon.state is JobState.RUNNING
        boss = job("2.0", "boss", work=20.0)
        pool.submit(boss)
        pool.run_until_done(max_time=500_000)
        assert peon.state is JobState.COMPLETED
        # Checkpointing bounded the loss: at most one step re-executed
        # per eviction.
        evictions = sum(1 for a in peon.attempts if a.error_name.startswith("Evicted"))
        assert evictions >= 1
        assert peon.steps_executed <= 20 + evictions

    def test_preempted_job_finds_another_machine(self):
        pool = preemptive_pool(n_extra_machines=1)  # exec000 has rank 0
        peon = job("1.0", "peon", work=300.0)
        peon.rank = 'ifThenElse(TARGET.machine == "prized", 5, 0)'
        pool.submit(peon)
        pool.run(until=60.0)
        assert peon.attempts[0].site == "prized"
        boss = job("2.0", "boss", work=300.0)
        boss.requirements = 'TARGET.machine == "prized"'
        pool.submit(boss)
        pool.run_until_done(max_time=500_000)
        assert peon.state is JobState.COMPLETED
        assert boss.state is JobState.COMPLETED
        # The peon's final home was the ordinary machine.
        assert peon.attempts[-1].site == "exec000"
