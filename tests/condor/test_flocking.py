"""Flocking: overflow to remote pools, link discipline, and GRID scope.

The federation story: a saturated schedd advertises its long-idle jobs
to other pools' matchmakers; a dead remote pool is a POOL-scope error
the grid-aware schedd *masks* by flocking elsewhere; only when the local
pool and every flock link are gone does the error widen to GRID scope
and reach the user.
"""

from repro.condor import Job, JobState, ProgramImage, Universe
from repro.condor.daemons.config import CondorConfig
from repro.condor.daemons.schedd import FlockLink
from repro.condor.grid import Grid, GridConfig, GridPoolSpec
from repro.condor.pool import figure3_chain
from repro.core.propagation import EventType
from repro.core.scope import ErrorScope
from repro.faults import FaultInjector, FlockLinkDown
from repro.jvm.program import JavaProgram, Step


def java_job(job_id="1.0", work=5.0, **kw):
    program = JavaProgram(steps=[Step.compute(work)], handles=set())
    return Job(
        job_id=job_id,
        owner="thain",
        universe=Universe.JAVA,
        image=ProgramImage(f"job{job_id}.class", program=program),
        **kw,
    )


def make_grid(home=1, remote=4, flocking=True, **condor_kw):
    condor_kw.setdefault("flock_after", 20.0)
    condor = CondorConfig(error_mode="scoped", **condor_kw)
    return Grid(GridConfig(
        pools=(GridPoolSpec("a", n_machines=home),
               GridPoolSpec("b", n_machines=remote)),
        condor=condor, flocking=flocking,
    ))


class TestFlockLinkUnit:
    def _link(self, **kw):
        config = CondorConfig(
            flock_retry_budget=3, flock_backoff_base=10.0,
            flock_backoff_cap=80.0, **kw,
        )
        return FlockLink("central-b", config)

    def test_starts_up_and_ready(self):
        link = self._link()
        assert not link.down
        assert link.ready(0.0)

    def test_down_only_after_budget_exhausted(self):
        link = self._link()
        assert not link.note_failure(0.0)
        assert not link.note_failure(10.0)
        assert link.note_failure(30.0)  # third strike: newly down
        assert link.down
        assert link.times_down == 1
        assert not link.note_failure(70.0)  # already down: no re-transition

    def test_backoff_doubles_to_the_cap(self):
        link = self._link()
        now, gaps = 0.0, []
        for _ in range(5):
            link.note_failure(now)
            gaps.append(link.next_attempt - now)
            now = link.next_attempt
        assert gaps == [10.0, 20.0, 40.0, 80.0, 80.0]

    def test_not_ready_inside_the_backoff_window(self):
        link = self._link()
        link.note_failure(0.0)
        assert not link.ready(5.0)
        assert link.ready(10.0)

    def test_success_resets_everything_but_times_down(self):
        link = self._link()
        for t in (0.0, 10.0, 30.0):
            link.note_failure(t)
        assert link.down and link.times_down == 1
        assert link.note_success(100.0)  # up-transition reported
        assert not link.down
        assert link.consecutive_failures == 0
        assert link.ready(100.0)
        assert link.times_down == 1  # cumulative: reporting survives recovery


class TestOverflow:
    def test_saturated_home_pool_overflows_to_remote(self):
        grid = make_grid(home=1, remote=4)
        jobs = [java_job(job_id=f"{i}.0", work=60.0) for i in range(8)]
        for job in jobs:
            grid.submit(job)
        grid.run_until_done(max_time=100_000)
        assert all(job.state is JobState.COMPLETED for job in jobs)
        assert grid.schedd.jobs_flocked > 0
        remote = [j for j in jobs if j.attempts[-1].site.startswith("b-")]
        assert remote, "no job ever completed on the remote pool"

    def test_idle_threshold_gates_flocking(self):
        """A briefly idle job is not flocked: only jobs idle for at
        least ``flock_after`` overflow."""
        grid = make_grid(home=2, remote=2, flock_after=10_000.0)
        jobs = [java_job(job_id=f"{i}.0", work=5.0) for i in range(4)]
        for job in jobs:
            grid.submit(job)
        grid.run_until_done(max_time=100_000)
        assert all(job.state is JobState.COMPLETED for job in jobs)
        assert grid.schedd.jobs_flocked == 0
        assert all(j.attempts[-1].site.startswith("a-") for j in jobs)

    def test_no_flocking_flag_keeps_pools_solitary(self):
        grid = make_grid(home=1, remote=4, flocking=False)
        assert grid.schedd.flock_links == []
        jobs = [java_job(job_id=f"{i}.0", work=10.0) for i in range(4)]
        for job in jobs:
            grid.submit(job)
        grid.run_until_done(max_time=100_000)
        assert all(j.attempts[-1].site.startswith("a-") for j in jobs)


class TestLinkOutage:
    def test_link_outage_is_masked_and_recovers(self):
        grid = make_grid(
            home=1, remote=4,
            flock_retry_budget=2, flock_backoff_base=15.0,
            flock_backoff_cap=60.0,
        )
        injector = FaultInjector(grid)
        injector.schedule(FlockLinkDown(), at=0.0, until=150.0)
        jobs = [java_job(job_id=f"{i}.0", work=60.0) for i in range(6)]
        for job in jobs:
            grid.submit(job)
        grid.run_until_done(max_time=100_000)
        (link,) = grid.schedd.flock_links
        assert link.times_down >= 1  # the outage was detected...
        assert not link.down  # ...and the backoff probe found the heal
        assert grid.schedd.jobs_flocked > 0
        assert all(job.state is JobState.COMPLETED for job in jobs)

    def test_dead_remote_pool_is_pool_scope_not_user_facing(self):
        """FlockLinkDown errors carry POOL scope, and the federated
        chain delivers POOL to the schedd, which masks by flocking."""
        grid = make_grid(home=1, remote=2, flock_retry_budget=2)
        injector = FaultInjector(grid)
        injector.schedule(FlockLinkDown(), at=0.0)
        # A long queue keeps flock attempts coming while the link is cut.
        jobs = [java_job(job_id=f"{i}.0", work=60.0) for i in range(6)]
        for job in jobs:
            grid.submit(job)
        grid.run_until_done(max_time=100_000)
        assert all(job.state is JobState.COMPLETED for job in jobs)
        flock_events = [ev for ev in grid.trace if ev.error.name == "FlockLinkDown"]
        delivered = [ev for ev in flock_events if ev.event is EventType.DELIVERED]
        assert delivered, "no FlockLinkDown error reached a manager"
        assert all(ev.manager == "schedd" for ev in delivered)
        # POOL scope stops at the grid-aware schedd: nothing escalates
        # past it, and the local pool was fine so GRID never fires.
        assert all(ev.manager != "user" for ev in flock_events)
        assert not any(ev.error.scope is ErrorScope.GRID for ev in grid.trace)


class TestGridScope:
    def test_scope_ladder_tops_out_at_grid(self):
        assert ErrorScope.POOL < ErrorScope.GRID
        assert ErrorScope.GRID.managing_program == "user"
        assert ErrorScope.GRID.terminal_for_job

    def test_federated_chain_moves_pool_to_the_schedd(self):
        solitary = figure3_chain(federated=False)
        federated = figure3_chain(federated=True)
        assert solitary["user"].manages(ErrorScope.POOL)
        assert federated["schedd"].manages(ErrorScope.POOL)
        assert not federated["user"].manages(ErrorScope.POOL)
        for chain in (solitary, federated):
            assert chain["user"].manages(ErrorScope.GRID)

    def test_total_matchmaker_loss_escalates_to_grid_scope(self):
        """Local matchmaker down AND every flock link down: the schedd
        has nowhere left to place work, and says so at GRID scope."""
        grid = make_grid(
            home=1, remote=2,
            flock_retry_budget=2, flock_backoff_base=10.0,
            flock_backoff_cap=40.0,
        )
        grid.net.set_host_down("central-a")
        grid.net.set_host_down("central-b")
        grid.submit(java_job())
        grid.run(600.0)
        reported = [
            ev for ev in grid.trace
            if ev.error.name == "GridUnreachable"
            and ev.event is EventType.REPORTED
        ]
        assert reported, "GridUnreachable never reached the user"
        assert reported[0].manager == "user"
        assert reported[0].error.scope is ErrorScope.GRID

    def test_one_live_link_prevents_grid_escalation(self):
        grid = make_grid(home=1, remote=2, flock_retry_budget=2)
        grid.net.set_host_down("central-a")  # local matchmaker only
        job = java_job(work=10.0)
        grid.submit(job)
        grid.run_until_done(max_time=100_000)
        assert job.state is JobState.COMPLETED
        assert job.attempts[-1].site.startswith("b-")
        assert not any(ev.error.scope is ErrorScope.GRID for ev in grid.trace)


class TestGridDeterminism:
    def _signature(self, seed):
        grid = Grid(GridConfig(
            pools=(GridPoolSpec("a", n_machines=1),
                   GridPoolSpec("b", n_machines=3)),
            seed=seed,
            condor=CondorConfig(error_mode="scoped", flock_after=20.0),
        ))
        jobs = [java_job(job_id=f"{i}.0", work=40.0) for i in range(6)]
        for job in jobs:
            grid.submit(job)
        grid.run_until_done(max_time=100_000)
        return tuple(
            (j.job_id, j.attempts[-1].site, j.attempts[-1].ended) for j in jobs
        )

    def test_same_seed_same_schedule(self):
        assert self._signature(3) == self._signature(3)
