"""Scale and whole-experiment determinism tests."""

import pytest

from repro.condor import Job, JobState, Pool, PoolConfig, ProgramImage, Universe
from repro.faults import FaultInjector, MisconfiguredJvm
from repro.harness.workloads import WorkloadSpec, make_workload
from repro.sim.rng import RngRegistry


class TestScale:
    def test_large_pool_many_jobs(self):
        """20 machines x 60 jobs, with a couple of bad machines mixed in:
        the kernel keeps every promise at (modest) scale."""
        pool = Pool(PoolConfig(n_machines=20, seed=2))
        injector = FaultInjector(pool)
        injector.schedule(MisconfiguredJvm("exec003"))
        injector.schedule(MisconfiguredJvm("exec011"))
        rngs = RngRegistry(2)
        jobs = make_workload(
            WorkloadSpec(n_jobs=60, io_fraction=0.3, exception_fraction=0.1,
                         exit_code_fraction=0.1, mean_work=6.0),
            rngs.stream("scale"),
            home_fs=pool.home_fs,
        )
        for job in jobs:
            pool.submit(job)
        pool.run_until_done(max_time=500_000)
        states = {job.state for job in jobs}
        assert states == {JobState.COMPLETED}
        # Every delivered result matches its expectation.
        for job in jobs:
            assert job.final_result.same_outcome(job.expected_result)

    def test_smp_heavy_pool(self):
        pool = Pool(PoolConfig(n_machines=0, seed=3))
        for i in range(4):
            pool.add_machine(f"smp{i}", slots=4, memory=2048 * 2**20)
        rngs = RngRegistry(3)
        jobs = make_workload(
            WorkloadSpec(n_jobs=32, io_fraction=0.0, exception_fraction=0.0,
                         exit_code_fraction=0.0, mean_work=10.0),
            rngs.stream("smp"),
        )
        for job in jobs:
            pool.submit(job)
        pool.run_until_done(max_time=500_000)
        assert all(j.state is JobState.COMPLETED for j in jobs)
        # 16 slots total: substantial overlap must have happened.
        spans = sorted((j.attempts[0].started, j.attempts[0].ended) for j in jobs)
        overlapping = sum(
            1 for (s1, e1), (s2, _) in zip(spans, spans[1:]) if s2 < e1
        )
        assert overlapping > 10


class TestExperimentDeterminism:
    def test_naive_vs_scoped_reproducible(self):
        from repro.harness.experiments import run_naive_vs_scoped

        a = run_naive_vs_scoped(seed=4, n_jobs=10, n_machines=3)
        b = run_naive_vs_scoped(seed=4, n_jobs=10, n_machines=3)
        assert a.table().render() == b.table().render()

    def test_black_hole_reproducible(self):
        from repro.harness.experiments import run_black_hole

        a = run_black_hole(seed=4, n_jobs=8, n_machines=4, n_black_holes=1)
        b = run_black_hole(seed=4, n_jobs=8, n_machines=4, n_black_holes=1)
        assert a.table().render() == b.table().render()

    def test_different_seeds_differ_somewhere(self):
        from repro.harness.experiments import run_fig1_kernel

        a = run_fig1_kernel(seed=0, n_jobs=6, n_machines=3)
        b = run_fig1_kernel(seed=9, n_jobs=6, n_machines=3)
        # Workload draws differ, so some observable must differ (makespan
        # snaps to negotiation-cycle granularity; matches/ads need not).
        assert (a.matches, a.ads_sent, a.makespan) != (b.matches, b.ads_sent, b.makespan)
