"""Regression tests for the matchmaker's leak and robustness fixes.

Four long-standing defects, each pinned here:

- a malformed ``scheddport``/``startdport`` (any non-numeric value)
  raised ``ValueError`` out of the collect loop -- one bad ad could kill
  the matchmaker;
- ``_recently_matched`` grew monotonically: machines that left the pool
  kept their last-matched stamp forever;
- ``owner_usage`` likewise retained every owner ever seen, decayed into
  denormal dust but never evicted;
- the freshness check used ``>=``: a machine whose ad arrived at the
  exact simulated instant of its previous match was wrongly treated as
  stale and skipped.
"""

import pytest

from repro.condor.classads import ClassAd
from repro.condor.daemons.config import CondorConfig
from repro.condor.daemons.matchmaker import USAGE_EPSILON, Matchmaker
from repro.sim.engine import Simulator
from repro.sim.network import Network

from tests.condor.test_match_index import job_ad, machine_ad, make_matchmaker


def drain(sim: Simulator, mm: Matchmaker) -> None:
    proc = sim.spawn(mm.run_cycle(), name="test-cycle")
    proc.defuse()
    sim.run(until=sim.now + 60)


class TestMalformedPorts:
    def test_bad_scheddport_does_not_raise(self):
        sim, mm = make_matchmaker()
        ad = job_ad("TRUE", scheddhost="sub", scheddport="not-a-port")
        mm.receive_ad("job", "sub#1", ad)
        assert mm.job_ads["sub#1"].reply_port == 0

    def test_bad_startdport_does_not_kill_the_cycle(self):
        sim, mm = make_matchmaker()
        mm.receive_ad(
            "machine", "exec", machine_ad("exec", startdport="broken")
        )
        mm.receive_ad(
            "job", "sub#1", job_ad("TRUE", scheddhost="sub", scheddport=9600)
        )
        drain(sim, mm)  # must not raise out of the negotiation cycle

    def test_port_of_accepts_numeric_strings(self):
        assert Matchmaker._port_of(ClassAd({"p": "9618"}), "p") == 9618
        assert Matchmaker._port_of(ClassAd({"p": 9618}), "p") == 9618
        assert Matchmaker._port_of(ClassAd(), "p") == 0


class TestRecentlyMatchedPruning:
    def test_expired_machine_drops_its_match_stamp(self):
        sim, mm = make_matchmaker(ad_lifetime=10.0)
        mm.receive_ad("machine", "exec", machine_ad("exec"))
        mm._record_match(mm.machine_ads["exec"])
        assert "exec" in mm._recently_matched
        sim.run(until=100.0)
        mm._expire()
        assert "exec" not in mm.machine_ads
        assert "exec" not in mm._recently_matched
        assert "exec" not in mm._fresh
        assert len(mm._index) == 0

    def test_refreshed_ad_survives_expiry(self):
        sim, mm = make_matchmaker(ad_lifetime=10.0)
        mm.receive_ad("machine", "exec", machine_ad("exec"))
        sim.run(until=8.0)
        mm.receive_ad("machine", "exec", machine_ad("exec"))
        sim.run(until=15.0)  # first ad is past the horizon, refresh is not
        mm._expire()
        assert "exec" in mm.machine_ads


class TestOwnerUsageEviction:
    def test_decayed_entries_are_evicted(self):
        sim, mm = make_matchmaker()
        mm.owner_usage["ghost"] = USAGE_EPSILON  # decays below the floor
        mm.owner_usage["active"] = 8.0
        drain(sim, mm)
        assert "ghost" not in mm.owner_usage
        assert mm.owner_usage["active"] == pytest.approx(4.0)

    def test_usage_eventually_vanishes_entirely(self):
        sim, mm = make_matchmaker()
        mm.owner_usage["once"] = 1.0
        for _ in range(40):  # 0.5**40 is far below any epsilon
            drain(sim, mm)
        assert mm.owner_usage == {}


class TestFreshnessBoundary:
    def test_ad_received_at_match_instant_is_eligible(self):
        """Matched at t, re-advertised at exactly t: the new ad is not
        older than the match, so the machine must remain a candidate
        (the old ``>=`` comparison wrongly skipped it)."""
        sim, mm = make_matchmaker()
        mm.receive_ad("machine", "exec", machine_ad("exec"))
        sim.run(until=5.0)
        mm.receive_ad("machine", "exec", machine_ad("exec"))
        mm._record_match(mm.machine_ads["exec"])  # both at t=5.0
        probe = job_ad("TRUE")
        assert mm._best_machine_scan(probe) is not None
        assert mm._best_machine(probe) is not None

    def test_ad_older_than_match_is_skipped(self):
        sim, mm = make_matchmaker()
        mm.receive_ad("machine", "exec", machine_ad("exec"))
        sim.run(until=5.0)
        mm._record_match(mm.machine_ads["exec"])  # ad t=0, match t=5
        probe = job_ad("TRUE")
        assert mm._best_machine_scan(probe) is None
        assert mm._best_machine(probe) is None
