"""Kernel-level failure injection: crashes, partitions, matchmaker loss.

These are the "failures in Condor itself" (§5): the components of
Figure 1 dying underneath running jobs.
"""

import pytest

from repro.condor import Job, JobState, Pool, PoolConfig, ProgramImage, Universe
from repro.condor.daemons.config import CondorConfig
from repro.core.scope import ErrorScope
from repro.faults import FaultInjector, MachineCrash, MisconfiguredJvm, NetworkPartition
from repro.jvm.program import JavaProgram, Step

MB = 2**20


def java_job(job_id="1.0", steps=None, **kw):
    program = JavaProgram(steps=steps or [Step.compute(5.0)])
    return Job(job_id, owner="thain", universe=Universe.JAVA,
               image=ProgramImage(f"j{job_id}.class", program=program), **kw)


class TestMachineCrash:
    def test_crash_mid_run_retried_elsewhere(self):
        pool = Pool(PoolConfig(n_machines=3))
        injector = FaultInjector(pool)
        job = java_job(steps=[Step.compute(200.0)])
        pool.submit(job)
        # Crash whichever machine gets the job, mid-execution.
        pool.run(until=60.0)
        assert job.state is JobState.RUNNING
        site = job.attempts[0].site
        injector.schedule(MachineCrash(site), at=60.0)
        pool.run_until_done(max_time=100_000)
        assert job.state is JobState.COMPLETED
        failed = [a for a in job.attempts if a.error_scope is not None]
        assert failed and failed[0].site == site
        assert failed[0].error_scope is ErrorScope.REMOTE_RESOURCE
        # The retry landed somewhere else (the dead machine is silent).
        assert job.attempts[-1].site != site

    def test_rebooted_machine_rejoins_pool(self):
        pool = Pool(PoolConfig(n_machines=1))
        injector = FaultInjector(pool)
        injector.schedule(MachineCrash("exec000"), at=0.0, until=300.0)
        job = java_job(steps=[Step.compute(5.0)])
        pool.submit(job)
        pool.run(until=250.0)
        assert job.state is JobState.IDLE  # nowhere to run
        pool.run_until_done(max_time=100_000)
        assert job.state is JobState.COMPLETED
        assert job.attempts[-1].started >= 300.0


class TestPartitions:
    def test_partition_during_execution_is_claim_lost(self):
        pool = Pool(PoolConfig(n_machines=2))
        job = java_job(steps=[Step.compute(300.0)])
        pool.submit(job)
        pool.run(until=60.0)
        assert job.state is JobState.RUNNING
        site = job.attempts[0].site
        injector = FaultInjector(pool)
        injector.schedule(NetworkPartition("submit", site), at=60.0, until=2000.0)
        pool.run_until_done(max_time=200_000)
        assert job.state is JobState.COMPLETED
        lost = [a for a in job.attempts if a.error_name == "ClaimLost"]
        assert lost and lost[0].error_scope is ErrorScope.REMOTE_RESOURCE

    def test_partition_of_central_manager_only_delays(self):
        """Matchmaker unreachable: jobs wait idle, then proceed on heal --
        pool-scope symptoms never reach the user."""
        pool = Pool(PoolConfig(n_machines=2))
        injector = FaultInjector(pool)
        for host in ("submit", "exec000", "exec001"):
            injector.schedule(NetworkPartition(host, "central"), at=0.0, until=400.0)
        job = java_job()
        pool.submit(job)
        pool.run(until=350.0)
        assert job.state is JobState.IDLE
        pool.run_until_done(max_time=100_000)
        assert job.state is JobState.COMPLETED
        assert pool.userlog.user_visible_errors() == []


class TestScheddPolicies:
    def test_max_retries_exhaustion_holds_job(self):
        condor = CondorConfig(error_mode="scoped", max_retries=3)
        pool = Pool(PoolConfig(n_machines=2, condor=condor))
        injector = FaultInjector(pool)
        injector.schedule(MisconfiguredJvm("exec000"))
        injector.schedule(MisconfiguredJvm("exec001"))  # nowhere good
        job = java_job()
        pool.submit(job)
        pool.run_until_done(max_time=200_000)
        assert job.state is JobState.HELD
        assert "too many retries" in job.hold_reason
        env_failures = sum(1 for a in job.attempts if a.error_scope is not None)
        assert env_failures == 4  # max_retries + the one that tripped it

    def test_avoidance_set_grows_and_is_respected(self):
        condor = CondorConfig(error_mode="scoped", schedd_avoidance=True,
                              avoidance_threshold=2)
        pool = Pool(PoolConfig(n_machines=3, condor=condor))
        FaultInjector(pool).schedule(MisconfiguredJvm("exec000"))
        jobs = [java_job(f"1.{i}") for i in range(6)]
        for job in jobs:
            pool.submit(job)
        pool.run_until_done(max_time=200_000)
        assert all(j.state is JobState.COMPLETED for j in jobs)
        assert "exec000" in pool.schedd.avoided_sites
        # After avoidance kicked in, exec000 got no more work.
        attempts_on_bad = [
            a for j in jobs for a in j.attempts if a.site == "exec000"
        ]
        assert len(attempts_on_bad) <= condor.avoidance_threshold

    def test_duplicate_submit_rejected(self):
        pool = Pool(PoolConfig(n_machines=1))
        job = java_job()
        pool.submit(job)
        with pytest.raises(ValueError):
            pool.submit(java_job())  # same id


class TestPeriodicSelfTest:
    def test_breakage_after_boot_detected_by_periodic_retest(self):
        condor = CondorConfig(
            error_mode="scoped", startd_self_test=True, self_test_interval=50.0
        )
        pool = Pool(PoolConfig(n_machines=1, condor=condor))
        startd = pool.startds["exec000"]
        assert startd.java_advertised  # healthy at boot
        FaultInjector(pool).schedule(MisconfiguredJvm("exec000"), at=10.0)
        pool.run(until=100.0)
        assert not startd.java_advertised  # periodic probe caught it

    def test_repair_readmits_machine(self):
        condor = CondorConfig(
            error_mode="scoped", startd_self_test=True, self_test_interval=50.0
        )
        pool = Pool(PoolConfig(n_machines=1, condor=condor))
        FaultInjector(pool).schedule(MisconfiguredJvm("exec000"), at=10.0, until=200.0)
        job = java_job()
        pool.submit(job)
        pool.run(until=150.0)
        assert job.state is JobState.IDLE  # no java capability anywhere
        pool.run_until_done(max_time=100_000)
        assert job.state is JobState.COMPLETED
        # Periodic testing has a detection lag: an attempt may land in the
        # window before the first retest (t < interval + ad propagation),
        # but never after detection.
        detection_horizon = 50.0 + 30.0  # retest interval + advertise interval
        failed = [a for a in job.attempts if a.error_scope is not None]
        assert all(a.started <= detection_horizon for a in failed)
        # The successful attempt waited for the repair.
        assert job.attempts[-1].started >= 200.0

    def test_startup_self_test_blocks_black_hole(self):
        condor = CondorConfig(error_mode="scoped", startd_self_test=True)
        pool = Pool(PoolConfig(n_machines=0, condor=condor))
        from repro.sim.machine import JavaInstallation

        pool.add_machine("broken", java=JavaInstallation(classpath_ok=False))
        startd = pool.startds["broken"]
        assert startd.self_test_result is False
        assert not startd.java_advertised
        ad = startd.build_ad()
        assert ad.value("hasjava") is False
