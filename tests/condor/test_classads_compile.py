"""The compiled ClassAd path must be indistinguishable from the interpreter.

``ClassAd.eval`` lowers each expression to a Python closure once and
reuses it for every subsequent evaluation (the matchmaker evaluates one
machine's Requirements against thousands of jobs).  These tests pin the
contract: same value as ``Expr.eval`` for every expression and context,
and caches that go stale the moment an ad mutates.
"""

from hypothesis import given, settings

from repro.condor.classads import ClassAd, compile_expr, parse
from repro.condor.classads.expr import ClassAdValue, EvalContext

from tests.condor.test_classads_properties import expressions


def equivalent(source: str, my: ClassAd, target: ClassAd | None) -> None:
    expr = parse(source)
    interpreted = expr.eval(EvalContext(my=my, target=target))
    compiled = compile_expr(expr)(EvalContext(my=my, target=target))
    assert compiled.type is interpreted.type
    assert compiled.payload == interpreted.payload


@given(expressions())
@settings(max_examples=300, deadline=None)
def test_compiled_equals_interpreted(source):
    my = ClassAd({"attr_a": 1, "attr_b": 2.5})
    target = ClassAd({"attr_c": "hello"})
    equivalent(source, my, target)


@given(expressions())
@settings(max_examples=100, deadline=None)
def test_compiled_equals_interpreted_without_target(source):
    equivalent(source, ClassAd({"attr_a": 7}), None)


def test_compiled_cross_ad_references():
    """TARGET refs resolve in the referenced ad's frame, including the
    flipped context when the target refers back to MY."""
    job = ClassAd({"memory_needed": 64})
    job.set_expr("requirements", "TARGET.memory >= MY.memory_needed")
    machine = ClassAd({"memory": 128})
    machine.set_expr("requirements", "TARGET.memory_needed <= MY.memory")
    assert job.eval("requirements", target=machine).payload is True
    assert machine.eval("requirements", target=job).payload is True


def test_compiled_circular_reference_is_total():
    ad = ClassAd()
    ad.set_expr("a", "b")
    ad.set_expr("b", "a")
    value = ad.eval("a")
    assert isinstance(value, ClassAdValue)
    # Matches the interpreter's verdict on the same cycle.
    assert value.type is ad.lookup("a").eval(EvalContext(my=ad)).type


def test_setitem_invalidates_compiled_cache():
    ad = ClassAd({"x": 1})
    assert ad.value("x") == 1  # populates the cache
    ad["x"] = 2
    assert ad.value("x") == 2


def test_set_expr_invalidates_compiled_cache():
    ad = ClassAd({"x": 1})
    ad.set_expr("total", "x + 1")
    assert ad.value("total") == 2
    ad.set_expr("total", "x + 10")
    assert ad.value("total") == 11


def test_cross_attr_reference_sees_mutation():
    """Closures resolve references through the referenced attribute's own
    cache entry at call time, so mutating a *dependency* is visible even
    though the dependent attribute's closure is reused."""
    ad = ClassAd({"x": 1})
    ad.set_expr("total", "x + 1")
    assert ad.value("total") == 2
    ad["x"] = 5
    assert ad.value("total") == 6


def test_update_invalidates_merged_names():
    ad = ClassAd({"x": 1, "y": 2})
    assert ad.value("x") == 1 and ad.value("y") == 2
    ad.update(ClassAd({"x": 10}))
    assert ad.value("x") == 10
    assert ad.value("y") == 2


def test_copy_evaluates_independently():
    ad = ClassAd({"x": 1})
    assert ad.value("x") == 1
    clone = ad.copy()
    clone["x"] = 99
    assert ad.value("x") == 1
    assert clone.value("x") == 99
