"""Tests for the submit-description language."""

import pytest

from repro.condor import JobState, Pool, PoolConfig, Universe
from repro.condor.submit import SubmitError, parse_submit
from repro.jvm.program import JavaProgram, Step

BASIC = """
# my first submission
universe     = java
executable   = Main.class
requirements = TARGET.memory >= 64
rank         = TARGET.cpuspeed
heap_request = 32M
owner        = alice
queue 3
"""


class TestParsing:
    def test_basic_queue(self):
        jobs = parse_submit(BASIC, cluster=7)
        assert [j.job_id for j in jobs] == ["7.0", "7.1", "7.2"]
        assert all(j.universe is Universe.JAVA for j in jobs)
        assert all(j.owner == "alice" for j in jobs)
        assert all(j.heap_request == 32 * 2**20 for j in jobs)
        assert jobs[0].requirements == "TARGET.memory >= 64"

    def test_bare_queue_is_one(self):
        jobs = parse_submit("executable = a.out\nqueue\n")
        assert len(jobs) == 1
        assert jobs[0].universe is Universe.VANILLA

    def test_multiple_queue_statements_snapshot_state(self):
        source = """
        executable = a.out
        owner = alice
        queue 1
        owner = bob
        queue 2
        """
        jobs = parse_submit(source)
        assert [j.owner for j in jobs] == ["alice", "bob", "bob"]
        assert [j.job_id for j in jobs] == ["1.0", "1.1", "1.2"]

    def test_input_files_with_and_without_mapping(self):
        source = """
        executable = a.out
        input_files = table.dat = /home/user/t.dat, /home/user/raw.bin
        queue
        """
        [job] = parse_submit(source)
        assert job.input_files == {
            "table.dat": "/home/user/t.dat",
            "raw.bin": "/home/user/raw.bin",
        }

    def test_sizes_with_suffixes(self):
        source = "executable = a.out\nimage_size = 2M\nheap_request = 512K\nqueue\n"
        [job] = parse_submit(source)
        assert job.image_size == 2 * 2**20
        assert job.heap_request == 512 * 2**10

    def test_programs_attached_by_executable_name(self):
        program = JavaProgram(steps=[Step.exit(9)])
        [job] = parse_submit(
            "executable = Main.class\nuniverse = java\nqueue\n",
            programs={"Main.class": program},
        )
        assert job.image.program is program

    def test_comments_and_blanks_ignored(self):
        jobs = parse_submit("# hi\n\nexecutable = a.out\n\n# mid\nqueue 1\n")
        assert len(jobs) == 1


class TestErrors:
    def test_no_queue_rejected(self):
        with pytest.raises(SubmitError, match="no queue"):
            parse_submit("executable = a.out\n")

    def test_queue_before_executable(self):
        with pytest.raises(SubmitError, match="before executable"):
            parse_submit("queue 1\n")

    def test_unknown_key_with_line_number(self):
        with pytest.raises(SubmitError, match="line 2"):
            parse_submit("executable = a.out\nfrobnicate = yes\nqueue\n")

    def test_unknown_universe(self):
        with pytest.raises(SubmitError, match="unknown universe"):
            parse_submit("universe = pvm3000\nexecutable = a\nqueue\n")

    def test_bad_requirements_rejected_at_submit_time(self):
        """Principle 4 at the submit interface: malformed contracts are
        refused before they can poison matchmaking."""
        with pytest.raises(SubmitError, match="bad requirements"):
            parse_submit("executable = a\nrequirements = ((broken\nqueue\n")

    def test_bad_rank_rejected(self):
        with pytest.raises(SubmitError, match="bad rank"):
            parse_submit('executable = a\nrank = "unclosed\nqueue\n')

    def test_bad_queue_count(self):
        with pytest.raises(SubmitError, match="bad queue count"):
            parse_submit("executable = a\nqueue lots\n")
        with pytest.raises(SubmitError, match="positive"):
            parse_submit("executable = a\nqueue 0\n")

    def test_bad_size(self):
        with pytest.raises(SubmitError, match="bad size"):
            parse_submit("executable = a\nimage_size = big\nqueue\n")

    def test_missing_equals(self):
        with pytest.raises(SubmitError, match="expected 'key = value'"):
            parse_submit("executable a.out\nqueue\n")


class TestEndToEndSubmission:
    def test_submit_file_runs_on_pool(self):
        pool = Pool(PoolConfig(n_machines=2))
        program = JavaProgram(steps=[Step.compute(3.0), Step.exit(2)])
        jobs = parse_submit(
            """
            universe = java
            executable = Main.class
            owner = alice
            queue 2
            """,
            programs={"Main.class": program},
        )
        for job in jobs:
            pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert all(j.state is JobState.COMPLETED for j in jobs)
        assert all(j.final_result.exit_code == 2 for j in jobs)
