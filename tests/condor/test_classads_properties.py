"""Property and fuzz tests for the ClassAd language.

The central guarantee: evaluation is *total*.  No ad, however malformed
its expressions, can crash the matchmaker -- bad expressions evaluate to
ERROR and simply fail to match (paper §2.1's matchmaking robustness rests
on this).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.condor.classads import ClassAd, LexError, ParseError, match, parse
from repro.condor.classads.expr import ClassAdValue, EvalContext

# -- fuzz: the parser never raises anything but its own error types --------

printable = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=60
)


@given(printable)
@settings(max_examples=300, deadline=None)
def test_parser_total_over_garbage(source):
    try:
        expr = parse(source)
    except (LexError, ParseError):
        return
    # If it parses, it must evaluate without raising.
    value = expr.eval(EvalContext())
    assert isinstance(value, ClassAdValue)


# -- generated well-formed expressions always evaluate --------------------------

def expressions():
    leaves = st.one_of(
        st.integers(min_value=-100, max_value=100).map(str),
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False).map(
            lambda x: f"{x:.3f}"
        ),
        st.sampled_from(["TRUE", "FALSE", "UNDEFINED", "ERROR", '"str"',
                         "attr_a", "MY.attr_b", "TARGET.attr_c"]),
    )

    def compose(children):
        binops = st.sampled_from(
            ["+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=",
             "&&", "||", "=?=", "=!="]
        )
        return st.one_of(
            st.tuples(children, binops, children).map(
                lambda t: f"({t[0]} {t[1]} {t[2]})"
            ),
            children.map(lambda c: f"(!{c})"),
            children.map(lambda c: f"(-{c})"),
            st.tuples(children, children, children).map(
                lambda t: f"ifThenElse({t[0]}, {t[1]}, {t[2]})"
            ),
        )

    return st.recursive(leaves, compose, max_leaves=12)


@given(expressions())
@settings(max_examples=300, deadline=None)
def test_generated_expressions_evaluate_totally(source):
    expr = parse(source)  # must parse: the generator emits valid syntax
    my = ClassAd({"attr_a": 1, "attr_b": 2.5})
    target = ClassAd({"attr_c": "hello"})
    value = expr.eval(EvalContext(my=my, target=target))
    assert isinstance(value, ClassAdValue)


@given(expressions())
@settings(max_examples=100, deadline=None)
def test_requirements_never_crash_matching(source):
    """Any expression can be a Requirements clause; match() stays total."""
    job = ClassAd({"x": 1})
    job.set_expr("requirements", source)
    machine = ClassAd({"y": 2})
    machine.set_expr("requirements", "TRUE")
    assert match(job, machine) in (True, False)


@given(st.integers(min_value=-10**9, max_value=10**9),
       st.integers(min_value=-10**9, max_value=10**9))
@settings(max_examples=100, deadline=None)
def test_integer_arithmetic_matches_python(a, b):
    ctx = EvalContext()
    assert parse(f"({a}) + ({b})").eval(ctx).payload == a + b
    assert parse(f"({a}) - ({b})").eval(ctx).payload == a - b
    assert parse(f"({a}) * ({b})").eval(ctx).payload == a * b
    if b != 0:
        assert parse(f"({a}) / ({b})").eval(ctx).payload == int(a / b)


@given(st.text(alphabet="abcxyz_", min_size=1, max_size=10),
       st.integers(min_value=0, max_value=1000))
@settings(max_examples=100, deadline=None)
def test_ad_attribute_round_trip(name, value):
    ad = ClassAd({name: value})
    assert ad.value(name) == value
    assert ad.value(name.upper()) == value


@given(expressions())
@settings(max_examples=100, deadline=None)
def test_external_refs_subset_of_known_attrs(source):
    expr = parse(source)
    refs = expr.external_refs()
    assert refs <= {"attr_a", "attr_b", "attr_c"}
