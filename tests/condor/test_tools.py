"""Rendering tests for the operator tools (condor_status and friends)."""

import pytest

from repro.condor.job import JobState
from repro.condor.pool import Pool, PoolConfig
from repro.condor.tools import (
    condor_history,
    condor_q,
    condor_status,
    error_scope_report,
    timeline,
)
from repro.faults import FaultInjector, MisconfiguredJvm
from repro.harness.workloads import WorkloadSpec, make_workload
from repro.sim.rng import RngRegistry


@pytest.fixture(scope="module")
def finished_pool():
    """A small completed run with one injected remote-resource fault."""
    pool = Pool(PoolConfig(n_machines=2, seed=0))
    FaultInjector(pool).schedule(MisconfiguredJvm("exec000"))
    jobs = make_workload(
        WorkloadSpec(n_jobs=2, io_fraction=0.0, exception_fraction=0.0,
                     exit_code_fraction=0.0),
        RngRegistry(0).stream("tools-test"),
    )
    for job in jobs:
        pool.submit(job)
    pool.run_until_done(max_time=50_000)
    assert all(j.state is JobState.COMPLETED for j in jobs)
    return pool


def test_condor_status_lists_every_slot(finished_pool):
    text = condor_status(finished_pool)
    assert "condor_status @ t=" in text
    for name, startd in finished_pool.startds.items():
        for slot in range(finished_pool.machines[name].slots):
            assert startd.slot_name(slot) in text
    assert "unclaimed" in text


def test_slot_name_is_public_and_stable(finished_pool):
    startd = finished_pool.startds["exec000"]
    machine = finished_pool.machines["exec000"]
    name = startd.slot_name(0)
    assert "exec000" in name
    if machine.slots == 1:
        assert name == "exec000"
    assert not hasattr(startd, "_slot_name")


def test_condor_q_shows_terminal_outcomes(finished_pool):
    text = condor_q(finished_pool)
    assert "condor_q @ t=" in text
    for job_id in finished_pool.schedd.jobs:
        assert job_id in text
    assert "completed" in text


def test_condor_history_one_row_per_attempt(finished_pool):
    text = condor_history(finished_pool)
    attempts = sum(
        len(j.attempts) for j in finished_pool.schedd.jobs.values()
    )
    assert attempts >= 2
    # Header + separator + one row per attempt (title adds lines too, so
    # check the lower bound on data lines instead of an exact count).
    assert len(text.splitlines()) >= attempts
    assert "JvmMisconfigured" in text


def test_timeline_marks_errors_and_results(finished_pool):
    text = timeline(finished_pool)
    assert text.startswith("timeline 0 ..")
    assert "#" in text  # completed execution
    assert "x" in text  # the faulted attempt
    for job_id in finished_pool.schedd.jobs:
        assert job_id in text


def test_timeline_empty_pool():
    pool = Pool(PoolConfig(n_machines=1, seed=0))
    assert timeline(pool) == "(no attempts recorded)"


def test_error_scope_report_counts_the_fault(finished_pool):
    text = error_scope_report(finished_pool)
    assert "error scopes observed" in text
    assert "JvmMisconfigured" in text
    assert "(none)" not in text


def test_error_scope_report_clean_pool():
    pool = Pool(PoolConfig(n_machines=1, seed=0))
    assert "(none)" in error_scope_report(pool)
