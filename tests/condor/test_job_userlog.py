"""Unit tests for the job model, user log, and protocol messages."""

import pytest

from repro.condor.job import ExecutionAttempt, Job, JobState, ProgramImage, Universe
from repro.condor.protocols import FileData, JobDetails, JobResult, WireSize
from repro.condor.userlog import UserLog, UserLogEventType
from repro.core.result import ResultFile
from repro.core.scope import ErrorScope


class TestJob:
    def test_defaults(self):
        job = Job("1.0", owner="alice")
        assert job.universe is Universe.JAVA
        assert job.state is JobState.IDLE
        assert not job.is_terminal
        assert job.attempt_count == 0
        assert job.checkpoint == 0

    def test_terminal_states(self):
        job = Job("1.0", owner="a")
        for state, terminal in [
            (JobState.IDLE, False),
            (JobState.MATCHED, False),
            (JobState.RUNNING, False),
            (JobState.COMPLETED, True),
            (JobState.HELD, True),
            (JobState.REMOVED, True),
        ]:
            job.set_state(state)
            assert job.is_terminal is terminal

    def test_to_classad_includes_requirements(self):
        job = Job("1.0", owner="a", requirements="TARGET.memory >= 64",
                  image_size=32 * 2**20)
        ad = job.to_classad()
        assert ad.value("jobid") == "1.0"
        assert ad.value("imagesize") == 32
        assert "requirements" in ad

    def test_failed_sites(self):
        job = Job("1.0", owner="a")
        job.attempts.append(
            ExecutionAttempt("m1", 0.0, 1.0, error_scope=ErrorScope.REMOTE_RESOURCE)
        )
        job.attempts.append(
            ExecutionAttempt("m2", 2.0, 3.0, result=ResultFile.completed(0))
        )
        # Program-scope "errors" are results, not failures:
        job.attempts.append(
            ExecutionAttempt("m3", 4.0, 5.0, error_scope=ErrorScope.PROGRAM)
        )
        assert job.failed_sites() == ["m1"]

    def test_attempt_succeeded(self):
        ok = ExecutionAttempt("m", 0.0, 1.0, result=ResultFile.completed(0))
        assert ok.succeeded
        bad = ExecutionAttempt("m", 0.0, 1.0,
                               result=ResultFile.environment(ErrorScope.JOB, "X"))
        assert not bad.succeeded
        none = ExecutionAttempt("m", 0.0, 1.0)
        assert not none.succeeded

    def test_corrupt_image_serialization(self):
        good = ProgramImage("a.class")
        assert good.serialized().startswith(b"\xca\xfe\xba\xbe")
        bad = ProgramImage("b.class", corrupt=True)
        assert not bad.serialized().startswith(b"\xca\xfe\xba\xbe")


class TestUserLog:
    def test_ordering_and_query(self):
        log = UserLog()
        log.log(1.0, "1.0", UserLogEventType.SUBMIT)
        log.log(2.0, "1.1", UserLogEventType.SUBMIT)
        log.log(3.0, "1.0", UserLogEventType.EXECUTE, "m1")
        assert len(log) == 3
        assert [e.type for e in log.for_job("1.0")] == [
            UserLogEventType.SUBMIT, UserLogEventType.EXECUTE
        ]
        assert log.count(UserLogEventType.SUBMIT) == 2

    def test_user_visible_errors(self):
        log = UserLog()
        log.log(1.0, "1.0", UserLogEventType.TERMINATED, "completed(exit=0)")
        log.log(2.0, "1.1", UserLogEventType.HELD, "error: whatever", error=True)
        log.log(3.0, "1.2", UserLogEventType.TERMINATED, "environment(X@JOB)",
                error=True)
        log.log(4.0, "1.3", UserLogEventType.SITE_FAILED, "absorbed")
        visible = log.user_visible_errors()
        assert {e.job_id for e in visible} == {"1.1", "1.2"}

    def test_classification_is_structural_not_textual(self):
        # The flag, not the detail prose, decides visibility: a detail
        # that *mentions* "error" is not an error delivery by itself.
        log = UserLog()
        log.log(1.0, "1.0", UserLogEventType.TERMINATED, "error-shaped but clean")
        log.log(2.0, "1.1", UserLogEventType.HELD, "quota", error=True)
        assert [e.job_id for e in log.user_visible_errors()] == ["1.1"]
        # The rendered format is unchanged by the new field.
        assert "error-shaped but clean" in str(log.events[0])
        assert str(log.events[0]).startswith(f"{1.0:10.3f}")

    def test_render(self):
        log = UserLog()
        log.log(1.5, "1.0", UserLogEventType.SUBMIT)
        text = log.render()
        assert "1.0" in text and "submit" in text


class TestProtocols:
    def test_job_details_defaults(self):
        details = JobDetails(
            job_id="1.0", universe="java", image_name="a.class",
            input_files=(), heap_request=1, program=None,
        )
        assert details.resume_from == 0
        assert details.credential is None

    def test_file_data_error_channel(self):
        good = FileData(name="f", data=b"x")
        assert not good.error
        bad = FileData(name="f", error="ENOENT")
        assert bad.error == "ENOENT" and bad.data == b""

    def test_job_result_variants(self):
        raw = JobResult(claim_id="c", exit_code=1)
        assert raw.result_file is None and not raw.starter_error
        scoped = JobResult(claim_id="c", result_file=b"status=completed\n")
        assert scoped.result_file is not None
        starter = JobResult(claim_id="c", starter_error="Evicted: x",
                            starter_error_scope="REMOTE_RESOURCE")
        assert ErrorScope[starter.starter_error_scope] is ErrorScope.REMOTE_RESOURCE

    def test_wire_sizes_sane(self):
        assert WireSize.CONTROL < WireSize.AD <= WireSize.FILE_CHUNK
