"""Multi-slot (SMP) machines: several independently-claimable slots."""

import pytest

from repro.condor import Job, JobState, Pool, PoolConfig, ProgramImage, Universe
from repro.faults import FaultInjector, MisconfiguredJvm, OwnerActivity
from repro.jvm.program import JavaProgram, Step

MB = 2**20


def java_job(job_id, work=20.0, steps=None):
    program = JavaProgram(steps=steps or [Step.compute(work)])
    return Job(job_id, owner="thain", universe=Universe.JAVA,
               image=ProgramImage(f"j{job_id}.class", program=program))


class TestSlots:
    def test_machine_requires_at_least_one_slot(self):
        from repro.sim.engine import Simulator
        from repro.sim.machine import Machine

        with pytest.raises(ValueError):
            Machine(Simulator(), "m", slots=0)

    def test_smp_runs_jobs_concurrently(self):
        pool = Pool(PoolConfig(n_machines=0))
        pool.add_machine("smp", slots=4, memory=1024 * MB)
        jobs = [java_job(f"1.{i}", work=50.0) for i in range(4)]
        for job in jobs:
            pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert all(j.state is JobState.COMPLETED for j in jobs)
        assert all(j.attempts[0].site == "smp" for j in jobs)
        # Executions overlapped: the last start precedes the first end.
        starts = [j.attempts[0].started for j in jobs]
        ends = [j.attempts[0].ended for j in jobs]
        assert max(starts) < min(ends)

    def test_slots_share_physical_memory(self):
        """Two big jobs on a 2-slot machine: the second one OOMs."""
        pool = Pool(PoolConfig(n_machines=0))
        pool.add_machine("smp", slots=2, memory=64 * MB)
        big = [java_job(f"1.{i}", steps=[Step.allocate(40 * MB), Step.compute(60.0)])
               for i in range(2)]
        for job in big:
            job.heap_request = 48 * MB
            pool.submit(job)
        pool.run(until=2_000.0)
        oom = [
            a
            for j in big
            for a in j.attempts
            if a.error_name == "OutOfMemoryError"
        ]
        assert oom  # shared memory made the slots interfere

    def test_slot_names_distinct_in_matchmaker(self):
        pool = Pool(PoolConfig(n_machines=0))
        pool.add_machine("smp", slots=3)
        pool.run(until=40.0)
        slot_ads = [n for n in pool.matchmaker.machine_ads if "slot" in n]
        assert sorted(slot_ads) == ["slot1@smp", "slot2@smp", "slot3@smp"]

    def test_single_slot_machine_keeps_plain_name(self):
        pool = Pool(PoolConfig(n_machines=1))
        pool.run(until=40.0)
        assert "exec000" in pool.matchmaker.machine_ads

    def test_more_jobs_than_slots_queue(self):
        pool = Pool(PoolConfig(n_machines=0))
        pool.add_machine("smp", slots=2, memory=1024 * MB)
        jobs = [java_job(f"1.{i}", work=10.0) for i in range(5)]
        for job in jobs:
            pool.submit(job)
        pool.run_until_done(max_time=100_000)
        assert all(j.state is JobState.COMPLETED for j in jobs)

    def test_eviction_clears_every_slot(self):
        pool = Pool(PoolConfig(n_machines=0))
        pool.add_machine("smp", slots=2, memory=1024 * MB)
        pool.add_machine("spare", slots=1, memory=1024 * MB)
        jobs = [java_job(f"1.{i}", work=200.0) for i in range(2)]
        for job in jobs:
            job.rank = 'ifThenElse(TARGET.machine == "smp", 10, 0)'
            pool.submit(job)
        pool.run(until=60.0)
        running_on_smp = [j for j in jobs if j.state is JobState.RUNNING]
        assert len(running_on_smp) == 2
        FaultInjector(pool).schedule(OwnerActivity("smp"), at=60.0, until=10_000.0)
        pool.run_until_done(max_time=200_000)
        assert all(j.state is JobState.COMPLETED for j in jobs)
        for job in jobs:
            assert any(a.error_name.startswith("Evicted") for a in job.attempts)

    def test_smp_black_hole_eats_in_parallel(self):
        """A misconfigured SMP is a multi-mouth black hole."""
        pool = Pool(PoolConfig(n_machines=0))
        pool.add_machine("bh", slots=4)
        pool.add_machine("good", slots=1)
        FaultInjector(pool).schedule(MisconfiguredJvm("bh"))
        jobs = [java_job(f"1.{i}", work=5.0) for i in range(4)]
        for job in jobs:
            pool.submit(job)
        pool.run_until_done(max_time=200_000)
        assert all(j.state is JobState.COMPLETED for j in jobs)
        wasted = [a for j in jobs for a in j.attempts if a.error_scope is not None]
        assert all(a.site == "bh" for a in wasted)
        assert len(wasted) >= 2  # several slots failed in the same cycle
