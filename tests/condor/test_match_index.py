"""The indexed matchmaking kernel vs. its executable specification.

``Matchmaker._best_machine_scan`` is the reference algorithm: evaluate
every machine, sort by ``(-rank, last_matched, name)``, take the head.
The indexed fast path (fresh set + requirement buckets + cached rank
orders) must return exactly that winner for every pool state; these
tests pin the equivalence, including a hypothesis sweep over randomized
pools, requirements, ranks, and match histories.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.condor.classads import ClassAd, parse
from repro.condor.daemons.config import CondorConfig
from repro.condor.daemons.match_index import (
    MachineIndex,
    extract_constraints,
    machine_rank_literal,
    rank_cacheable,
)
from repro.condor.daemons.matchmaker import Matchmaker
from repro.sim.engine import Simulator
from repro.sim.network import Network


def make_matchmaker(**overrides) -> tuple[Simulator, Matchmaker]:
    """A matchmaker whose negotiation loop never fires on its own."""
    overrides.setdefault("negotiation_interval", 10**9)
    sim = Simulator()
    net = Network(sim)
    mm = Matchmaker(sim, net, "cm", CondorConfig(**overrides))
    return sim, mm


def machine_ad(name: str, requirements: str = "TRUE", **attrs) -> ClassAd:
    ad = ClassAd({"name": name, "machine": name, "startdport": 9700, **attrs})
    ad.set_expr("requirements", requirements)
    return ad


def job_ad(requirements: str = "TRUE", rank: str | None = None, **attrs) -> ClassAd:
    ad = ClassAd(attrs)
    ad.set_expr("requirements", requirements)
    if rank is not None:
        ad.set_expr("rank", rank)
    return ad


# -- MachineIndex unit behaviour -------------------------------------------

class TestMachineIndex:
    def test_equality_bucket_narrowing(self):
        index = MachineIndex()
        index.add("a", ClassAd({"arch": "intel"}))
        index.add("b", ClassAd({"arch": "sparc"}))
        test, estimate, names = index.membership(
            job_ad('TARGET.arch == "intel"')
        )
        assert estimate == 1
        assert test("a") and not test("b")
        assert set(names) == {"a"}

    def test_string_equality_is_case_insensitive(self):
        index = MachineIndex()
        index.add("a", ClassAd({"arch": "Intel"}))
        test, estimate, _ = index.membership(job_ad('TARGET.arch == "INTEL"'))
        assert estimate == 1 and test("a")

    def test_threshold_buckets(self):
        index = MachineIndex()
        for name, mem in [("a", 32), ("b", 64), ("c", 128)]:
            index.add(name, ClassAd({"memory": mem}))
        test, estimate, names = index.membership(job_ad("TARGET.memory >= 64"))
        assert estimate == 2
        assert not test("a") and test("b") and test("c")
        assert set(names) == {"b", "c"}

    def test_empty_bucket_estimate_is_zero(self):
        index = MachineIndex()
        index.add("a", ClassAd({"arch": "intel"}))
        _, estimate, _ = index.membership(job_ad('TARGET.arch == "sparc"'))
        assert estimate == 0

    def test_expression_valued_attr_is_opaque_candidate(self):
        """A machine whose attribute is an expression can evaluate to
        anything, so it must survive every probe on that attribute."""
        index = MachineIndex()
        cheater = ClassAd()
        cheater.set_expr("memory", "32 + 96")
        index.add("shape", cheater)
        index.add("small", ClassAd({"memory": 16}))
        test, estimate, _ = index.membership(job_ad("TARGET.memory >= 100"))
        assert test("shape") and not test("small")
        assert estimate == 1

    def test_opaque_requirements_admit_everything(self):
        index = MachineIndex()
        index.add("a", ClassAd({"arch": "intel"}))
        test, estimate, names = index.membership(
            job_ad("TARGET.memory > TARGET.disk")
        )
        assert test is None and names is None
        assert estimate == 1

    def test_remove_clears_postings(self):
        index = MachineIndex()
        index.add("a", ClassAd({"arch": "intel", "memory": 64}))
        index.remove("a")
        assert len(index) == 0
        _, estimate, _ = index.membership(job_ad('TARGET.arch == "intel"'))
        assert estimate == 0

    def test_readvertise_replaces_postings(self):
        index = MachineIndex()
        index.add("a", ClassAd({"arch": "intel"}))
        index.add("a", ClassAd({"arch": "sparc"}))
        test, estimate, _ = index.membership(job_ad('TARGET.arch == "intel"'))
        assert estimate == 0 and not test("a")

    def test_stamp_tracks_mutations(self):
        index = MachineIndex()
        s0 = index.stamp
        index.add("a", ClassAd({"x": 1}))
        assert index.stamp > s0
        s1 = index.stamp
        index.remove("a")
        assert index.stamp > s1


class TestConstraintExtraction:
    def test_conjunction_yields_multiple_constraints(self):
        constraints = extract_constraints(
            job_ad('TARGET.arch == "intel" && TARGET.memory >= 64')
        )
        assert {(c.attr, c.op) for c in constraints} == {
            ("arch", "=="), ("memory", ">="),
        }

    def test_flipped_comparison(self):
        (c,) = extract_constraints(job_ad("64 <= TARGET.memory"))
        assert (c.attr, c.op, c.bound) == ("memory", ">=", 64.0)

    def test_rhs_evaluated_job_side(self):
        (c,) = extract_constraints(
            job_ad("TARGET.memory >= MY.needed", needed=48)
        )
        assert (c.attr, c.op, c.bound) == ("memory", ">=", 48.0)

    def test_unqualified_ref_resolving_job_side_is_not_a_constraint(self):
        # "needed" lives on the job, so "needed >= 10" says nothing about
        # the machine.
        assert extract_constraints(job_ad("needed >= 10", needed=48)) == []

    def test_unqualified_ref_absent_from_job_constrains_machine(self):
        (c,) = extract_constraints(job_ad("memory >= 10"))
        assert (c.attr, c.op) == ("memory", ">=")

    def test_analysis_cache_invalidated_on_mutation(self):
        ad = job_ad('TARGET.arch == "intel"')
        assert len(extract_constraints(ad)) == 1
        ad.set_expr("requirements", "TRUE")
        assert extract_constraints(ad) == []


class TestRankCacheability:
    def test_missing_and_literal_ranks_are_cacheable(self):
        assert rank_cacheable(None)
        assert rank_cacheable(parse("10"))

    def test_target_only_rank_is_cacheable(self):
        assert rank_cacheable(parse("TARGET.cpuspeed * 2 + TARGET.memory"))

    def test_my_or_unqualified_rank_is_not(self):
        assert not rank_cacheable(parse("MY.priority"))
        assert not rank_cacheable(parse("cpuspeed"))

    def test_machine_side_literal_validation(self):
        literal = ClassAd({"cpuspeed": 3})
        assert machine_rank_literal(literal, {"cpuspeed"})
        assert machine_rank_literal(literal, {"absent"})
        expressive = ClassAd()
        expressive.set_expr("cpuspeed", "TARGET.bribe * 100")
        assert not machine_rank_literal(expressive, {"cpuspeed"})


# -- indexed path == reference scan ----------------------------------------

MACHINE_REQS = [
    "TRUE",
    "TARGET.needed <= 9999",
    "TARGET.needed <= MY.memory",
    "TARGET.absent > 1",  # UNDEFINED: this machine rejects everyone
]
JOB_REQS = [
    "TRUE",
    'TARGET.arch == "intel"',
    'TARGET.arch == "INTEL" && TARGET.memory >= 33',
    "TARGET.memory >= 64",
    "TARGET.memory >= MY.needed",
    "MY.needed <= TARGET.memory",
    "TARGET.hasjava == TRUE",
    "TARGET.memory > TARGET.disk",  # opaque to the index
]
JOB_RANKS = [None, "TARGET.memory", "TARGET.cpuspeed * 2", "MY.needed", "7"]

machine_strategy = st.fixed_dictionaries(
    {
        "arch": st.sampled_from(["intel", "sparc"]),
        "memory": st.sampled_from([32, 64, 128]),
        "cpuspeed": st.integers(min_value=1, max_value=4),
        "hasjava": st.booleans(),
        "state": st.sampled_from(["unclaimed", "unclaimed", "claimed"]),
        "requirements": st.sampled_from(MACHINE_REQS),
        "expr_memory": st.booleans(),  # advertise memory as an expression
        "history": st.sampled_from(["never", "boundary", "stale"]),
    }
)

job_strategy = st.fixed_dictionaries(
    {
        "requirements": st.sampled_from(JOB_REQS),
        "rank": st.sampled_from(JOB_RANKS),
        "needed": st.sampled_from([16, 64, 200]),
    }
)


def build_pool(mm: Matchmaker, sim: Simulator, machines: list[dict]) -> None:
    for i, spec in enumerate(machines):
        name = f"m{i:02d}"
        ad = machine_ad(
            name,
            requirements=spec["requirements"],
            arch=spec["arch"],
            cpuspeed=spec["cpuspeed"],
            hasjava=spec["hasjava"],
            state=spec["state"],
        )
        if spec["expr_memory"]:
            ad.set_expr("memory", f"{spec['memory']} + 0")
        else:
            ad["memory"] = spec["memory"]
        mm.receive_ad("machine", name, ad)
    sim.run(until=1.0)
    for i, spec in enumerate(machines):
        name = f"m{i:02d}"
        if spec["history"] == "stale":
            # Matched strictly after its last ad: not a candidate.
            mm._record_match(mm.machine_ads[name])
        elif spec["history"] == "boundary":
            # Re-advertised at the exact match instant: still a candidate.
            mm.receive_ad("machine", name, mm.machine_ads[name].ad)
            mm._record_match(mm.machine_ads[name])


@given(
    st.lists(machine_strategy, min_size=1, max_size=8),
    st.lists(job_strategy, min_size=1, max_size=4),
)
@settings(max_examples=150, deadline=None)
def test_indexed_winner_equals_scan_winner(machines, jobs):
    sim, mm = make_matchmaker()
    build_pool(mm, sim, machines)
    for spec in jobs:
        ad = job_ad(spec["requirements"], rank=spec["rank"], needed=spec["needed"])
        expected = mm._best_machine_scan(ad)
        got = mm._best_machine(ad)
        assert (got.name if got else None) == (
            expected.name if expected else None
        )


@given(
    st.lists(machine_strategy, min_size=2, max_size=8),
    job_strategy,
)
@settings(max_examples=60, deadline=None)
def test_equivalence_survives_a_match_sequence(machines, spec):
    """Drain the pool one match at a time, checking the indexed path
    against the scan at every intermediate state."""
    sim, mm = make_matchmaker()
    build_pool(mm, sim, machines)
    ad = job_ad(spec["requirements"], rank=spec["rank"], needed=spec["needed"])
    for _ in range(len(machines) + 1):
        expected = mm._best_machine_scan(ad)
        got = mm._best_machine(ad)
        assert (got.name if got else None) == (
            expected.name if expected else None
        )
        if got is None:
            break
        mm._record_match(got)


def test_indexed_path_sees_midcycle_arrival():
    """A machine advertised after the rank order was first built must be
    eligible immediately (mid-cycle arrivals are visible to the scan)."""
    sim, mm = make_matchmaker()
    mm.receive_ad("machine", "old", machine_ad("old", memory=32))
    ad = job_ad("TARGET.memory >= 1", rank="TARGET.memory")
    assert mm._best_machine(ad).name == "old"  # builds and caches the order
    mm.receive_ad("machine", "new", machine_ad("new", memory=128))
    assert mm._best_machine_scan(ad).name == "new"
    assert mm._best_machine(ad).name == "new"


def test_walk_prefix_compaction_preserves_winners():
    """Matching away a long prefix of a cached rank order (then letting
    compaction slice it) must never change subsequent winners."""
    sim, mm = make_matchmaker()
    for i in range(200):
        mm.receive_ad(
            "machine", f"m{i:03d}", machine_ad(f"m{i:03d}", memory=1000 - i)
        )
    sim.run(until=1.0)
    ad = job_ad("TARGET.memory >= 1", rank="TARGET.memory")
    for i in range(200):
        expected = mm._best_machine_scan(ad)
        got = mm._best_machine(ad)
        assert got.name == expected.name == f"m{i:03d}"
        mm._record_match(got)
    assert mm._best_machine(ad) is None


def test_preemption_config_uses_reference_scan():
    sim, mm = make_matchmaker(preemption=True)
    busy = machine_ad("busy", memory=64, state="claimed", currentrank=1.0)
    busy.set_expr("rank", "TARGET.priority")
    mm.receive_ad("machine", "busy", busy)
    assert mm._best_machine(job_ad("TRUE", priority=5)) is not None
    assert mm._best_machine(job_ad("TRUE", priority=0)) is None
