"""The PVM universe: cluster-scope errors (paper §3.3)."""

import pytest

from repro.condor import Job, JobState, Pool, PoolConfig, ProgramImage, Universe
from repro.core.scope import ErrorScope
from repro.faults import FaultInjector, MemoryPressure
from repro.jvm.program import JavaProgram, Step
from repro.pvm import PvmProgram

MB = 2**20


def pvm_job(job_id="1.0", n_nodes=4, node_steps=None, heap=64 * MB):
    nodes = [
        JavaProgram(name=f"node{i}", steps=list(node_steps or [Step.compute(10.0)]))
        for i in range(n_nodes)
    ]
    program = PvmProgram(name="cluster", nodes=nodes)
    job = Job(job_id, owner="thain", universe=Universe.PVM,
              image=ProgramImage("pvm.bin", program=program))
    job.heap_request = heap
    return job


class TestPvmProgram:
    def test_needs_nodes(self):
        with pytest.raises(ValueError):
            PvmProgram(nodes=[])

    def test_n_nodes(self):
        assert pvm_job(n_nodes=3).image.program.n_nodes == 3


class TestPvmExecution:
    def test_healthy_cluster_completes(self):
        pool = Pool(PoolConfig(n_machines=2))
        job = pvm_job()
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.COMPLETED
        assert job.final_result.exit_code == 0

    def test_nodes_run_concurrently(self):
        pool = Pool(PoolConfig(n_machines=1))
        job = pvm_job(n_nodes=4, node_steps=[Step.compute(40.0)])
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.COMPLETED
        attempt = job.attempts[0]
        # Four 40s nodes in parallel: well under 4 x 40s.
        assert attempt.ended - attempt.started < 100.0

    def test_node_failure_is_cluster_scope(self):
        """'If one node crashes, then the whole cluster of nodes is
        obliged to fail.'"""
        pool = Pool(PoolConfig(n_machines=2))
        injector = FaultInjector(pool)
        # Starve the first machine: one node's allocation fails there.
        injector.schedule(
            MemoryPressure("exec000", pool.machines["exec000"].memory_total - 12 * MB)
        )
        job = pvm_job(
            n_nodes=2,
            node_steps=[Step.allocate(8 * MB), Step.compute(10.0)],
            heap=32 * MB,
        )
        pool.submit(job)
        pool.run_until_done(max_time=100_000)
        assert job.state is JobState.COMPLETED  # retried on the good machine
        failed = [a for a in job.attempts if a.error_scope is not None]
        assert failed and failed[0].error_scope is ErrorScope.CLUSTER
        assert failed[0].error_name.startswith("PvmNodeFailed")
        assert failed[0].site == "exec000"

    def test_cluster_scope_is_retried_not_delivered(self):
        """Cluster scope sits between PROGRAM and JOB: retry elsewhere."""
        assert ErrorScope.CLUSTER.retry_elsewhere
        assert not ErrorScope.CLUSTER.within_program_contract

    def test_surviving_nodes_killed_on_failure(self):
        pool = Pool(PoolConfig(n_machines=1))
        # Node 0 dies quickly; node 1 would run 500s if left alone.
        nodes = [
            JavaProgram(name="dies", steps=[Step.throw("NullPointerException")]),
            JavaProgram(name="longhaul", steps=[Step.compute(500.0)]),
        ]
        job = Job("1.0", owner="t", universe=Universe.PVM,
                  image=ProgramImage("p.bin", program=PvmProgram(nodes=nodes)))
        pool.submit(job)
        pool.run(until=200.0)
        # The long node was killed with the cluster, well before 500s:
        # the machine is already free again (claim released).
        startd = pool.startds["exec000"]
        assert startd.claimed_by is None

    def test_all_scopes_now_have_producers(self):
        """With PVM in place, every interior scope of the taxonomy is
        produced by some subsystem (FILE..JOB)."""
        from repro.core.classify import DEFAULT_CLASSIFIER

        producible = {
            ErrorScope.FILE: ("fs", "ENOENT"),
            ErrorScope.PROGRAM: ("java", "NullPointerException"),
            ErrorScope.PROCESS: ("net", "ECONNRESET"),
            ErrorScope.VIRTUAL_MACHINE: ("java", "OutOfMemoryError"),
            ErrorScope.CLUSTER: ("condor", "PvmNodeFailed"),
            ErrorScope.REMOTE_RESOURCE: ("condor", "JvmMisconfigured"),
            ErrorScope.LOCAL_RESOURCE: ("condor", "HomeFilesystemOffline"),
            ErrorScope.JOB: ("condor", "CorruptProgramImage"),
            ErrorScope.POOL: ("condor", "MatchmakerUnreachable"),
        }
        for scope, (ns, name) in producible.items():
            assert DEFAULT_CLASSIFIER.classify(ns, name).scope is scope
