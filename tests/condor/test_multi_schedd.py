"""Multiple submission sites and fair-share negotiation."""

import pytest

from repro.condor import Job, JobState, Pool, PoolConfig, ProgramImage, Universe
from repro.condor.daemons.config import CondorConfig
from repro.jvm.program import JavaProgram, Step


def java_job(job_id, owner, work=10.0):
    program = JavaProgram(steps=[Step.compute(work)])
    return Job(job_id, owner=owner, universe=Universe.JAVA,
               image=ProgramImage(f"j{job_id}.class", program=program))


class TestMultiSchedd:
    def test_two_sites_share_one_pool(self):
        pool = Pool(PoolConfig(n_machines=3))
        second = pool.add_schedd("submit2")
        a = java_job("1.0", "alice")
        b = java_job("9.0", "bob")
        pool.submit(a)
        second.submit(b)
        pool.run_until_done(max_time=50_000, expected_jobs=2)
        assert a.state is JobState.COMPLETED
        assert b.state is JobState.COMPLETED

    def test_duplicate_schedd_host_rejected(self):
        pool = Pool(PoolConfig(n_machines=1))
        with pytest.raises(ValueError):
            pool.add_schedd("submit")

    def test_second_site_has_own_home_fs(self):
        pool = Pool(PoolConfig(n_machines=2))
        second = pool.add_schedd("submit2")
        second.home_fs_local.write_file("/home/user/in2.dat", b"two")
        job = java_job("9.0", "bob")
        job.image.program.steps.append(Step.read("/home/user/in2.dat"))
        second.submit(job)
        pool.run_until_done(max_time=50_000, expected_jobs=1)
        assert job.state is JobState.COMPLETED

    def test_same_job_id_allowed_on_different_schedds(self):
        pool = Pool(PoolConfig(n_machines=2))
        second = pool.add_schedd("submit2")
        a = java_job("1.0", "alice")
        b = java_job("1.0", "bob")
        pool.submit(a)
        second.submit(b)
        pool.run_until_done(max_time=50_000, expected_jobs=2)
        assert a.state is b.state is JobState.COMPLETED


class TestFairShare:
    def _flood_and_trickle(self, fair_share):
        """Alice floods 8 jobs at t=0; Bob submits 2 at t=100 from his own
        site.  One machine: pure contention."""
        condor = CondorConfig(error_mode="scoped", fair_share=fair_share)
        pool = Pool(PoolConfig(n_machines=1, condor=condor))
        alice_jobs = [java_job(f"1.{i}", "alice", work=20.0) for i in range(8)]
        for job in alice_jobs:
            pool.submit(job)
        second = pool.add_schedd("submit2")
        bob_jobs = [java_job(f"2.{i}", "bob", work=20.0) for i in range(2)]
        for job in bob_jobs:
            pool.sim.call_at(100.0, lambda j=job: second.submit(j))
        pool.run_until_done(max_time=500_000, expected_jobs=10)
        assert all(j.state is JobState.COMPLETED for j in alice_jobs + bob_jobs)
        return max(j.attempts[-1].ended for j in bob_jobs)

    def test_fair_share_lets_the_small_user_in_early(self):
        """With fair share, Bob's late jobs do not wait behind the whole
        flood: Alice's accumulated usage puts Bob first at each cycle."""
        with_fs = self._flood_and_trickle(fair_share=True)
        without = self._flood_and_trickle(fair_share=False)
        assert with_fs < without

    def test_usage_decays(self):
        pool = Pool(PoolConfig(n_machines=2))
        jobs = [java_job(f"1.{i}", "alice", work=2.0) for i in range(2)]
        for job in jobs:
            pool.submit(job)
        pool.run_until_done(max_time=50_000)
        usage_after = pool.matchmaker.owner_usage.get("alice", 0.0)
        pool.run(until=pool.sim.now + 300.0)  # idle cycles decay usage
        assert pool.matchmaker.owner_usage.get("alice", 0.0) < usage_after
