"""Integration tests of the Condor kernel: Figure 1's protocols end to end."""

import pytest

from repro.condor import Job, JobState, Pool, PoolConfig, ProgramImage, Universe
from repro.condor.daemons.config import CondorConfig
from repro.core.result import ResultStatus
from repro.jvm.program import JavaProgram, Step

MB = 2**20


def java_job(job_id="1.0", steps=None, handles=None, **kw):
    program = JavaProgram(steps=steps or [Step.compute(5.0)], handles=handles or set())
    return Job(
        job_id=job_id,
        owner="thain",
        universe=Universe.JAVA,
        image=ProgramImage(f"job{job_id}.class", program=program),
        **kw,
    )


@pytest.fixture
def pool():
    return Pool(PoolConfig(n_machines=2, condor=CondorConfig(error_mode="scoped")))


class TestHealthyKernel:
    def test_single_job_completes(self, pool):
        job = java_job()
        pool.submit(job)
        pool.run_until_done(max_time=10_000)
        assert job.state is JobState.COMPLETED
        assert job.final_result.status is ResultStatus.COMPLETED
        assert job.final_result.exit_code == 0

    def test_protocol_sequence_in_userlog(self, pool):
        from repro.condor.userlog import UserLogEventType

        job = java_job()
        pool.submit(job)
        pool.run_until_done(max_time=10_000)
        kinds = [e.type for e in pool.userlog.for_job(job.job_id)]
        assert kinds == [
            UserLogEventType.SUBMIT,
            UserLogEventType.EXECUTE,
            UserLogEventType.TERMINATED,
        ]

    def test_matchmaker_saw_both_parties(self, pool):
        job = java_job()
        pool.submit(job)
        pool.run_until_done(max_time=10_000)
        assert pool.matchmaker.matches_made >= 1
        assert len(pool.matchmaker.machine_ads) == 2

    def test_multiple_jobs_spread_over_machines(self):
        pool = Pool(PoolConfig(n_machines=4))
        jobs = [java_job(f"1.{i}", steps=[Step.compute(50.0)]) for i in range(4)]
        for job in jobs:
            pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert all(j.state is JobState.COMPLETED for j in jobs)
        sites = {j.attempts[0].site for j in jobs}
        assert len(sites) == 4  # one claim per machine at a time

    def test_more_jobs_than_machines_queue(self):
        pool = Pool(PoolConfig(n_machines=2))
        jobs = [java_job(f"1.{i}", steps=[Step.compute(10.0)]) for i in range(6)]
        for job in jobs:
            pool.submit(job)
        pool.run_until_done(max_time=100_000)
        assert all(j.state is JobState.COMPLETED for j in jobs)

    def test_system_exit_code_reaches_user(self, pool):
        job = java_job(steps=[Step.exit(17)])
        pool.submit(job)
        pool.run_until_done(max_time=10_000)
        assert job.state is JobState.COMPLETED
        assert job.final_result.exit_code == 17

    def test_program_exception_reaches_user_as_result(self, pool):
        """'Users wanted to see program generated errors' (§2.3)."""
        job = java_job(steps=[Step.throw("ArrayIndexOutOfBoundsException")])
        pool.submit(job)
        pool.run_until_done(max_time=10_000)
        assert job.state is JobState.COMPLETED
        assert job.final_result.status is ResultStatus.EXCEPTION
        assert job.final_result.exception_name == "ArrayIndexOutOfBoundsException"

    def test_job_with_remote_io(self, pool):
        pool.home_fs.write_file("/home/user/data.in", b"payload")
        job = java_job(
            steps=[
                Step.read("/home/user/data.in"),
                Step.write("/home/user/data.out", b"processed"),
            ]
        )
        pool.submit(job)
        pool.run_until_done(max_time=10_000)
        assert job.state is JobState.COMPLETED
        assert pool.home_fs.read_file("/home/user/data.out") == b"processed"

    def test_input_file_transfer(self, pool):
        pool.home_fs.write_file("/home/user/table.dat", b"table")
        job = java_job()
        job.input_files = {"table.dat": "/home/user/table.dat"}
        pool.submit(job)
        pool.run_until_done(max_time=10_000)
        assert job.state is JobState.COMPLETED
        # The file landed in some starter scratch directory.
        site = job.attempts[0].site
        scratch = pool.machines[site].scratch
        claims = scratch.listdir("/scratch")
        assert any(
            scratch.exists(f"/scratch/{c}/table.dat") for c in claims
        )

    def test_vanilla_universe_job(self, pool):
        program = JavaProgram(steps=[Step.compute(1.0), Step.exit(5)])
        job = Job(
            "2.0",
            owner="thain",
            universe=Universe.VANILLA,
            image=ProgramImage("a.out", program=program),
        )
        pool.submit(job)
        pool.run_until_done(max_time=10_000)
        assert job.state is JobState.COMPLETED
        assert job.final_result.exit_code == 5

    def test_determinism_same_seed_same_trace(self):
        def run_once():
            pool = Pool(PoolConfig(n_machines=3, seed=11))
            jobs = [java_job(f"1.{i}", steps=[Step.compute(7.0)]) for i in range(5)]
            for job in jobs:
                pool.submit(job)
            end = pool.run_until_done(max_time=50_000)
            return (
                end,
                [(e.time, e.job_id, e.type.value) for e in pool.userlog.events],
                [(j.job_id, j.attempts[0].site) for j in jobs],
            )

        assert run_once() == run_once()

    def test_claimed_machine_not_rematched(self):
        pool = Pool(PoolConfig(n_machines=1))
        long_job = java_job("1.0", steps=[Step.compute(100.0)])
        second = java_job("1.1", steps=[Step.compute(1.0)])
        pool.submit(long_job)
        pool.submit(second)
        pool.run_until_done(max_time=50_000)
        assert long_job.state is JobState.COMPLETED
        assert second.state is JobState.COMPLETED
        # Runs must not have overlapped on the single machine.
        spans = sorted(
            (j.attempts[0].started, j.attempts[0].ended) for j in (long_job, second)
        )
        assert spans[0][1] <= spans[1][0] + 1e-9


class TestOwnerPolicy:
    def test_policy_rejects_mismatched_job(self):
        from repro.sim.machine import OwnerPolicy

        pool = Pool(PoolConfig(n_machines=0))
        pool.add_machine(
            "picky",
            policy=OwnerPolicy(start_expr='TARGET.owner == "boss"'),
        )
        job = java_job()
        pool.submit(job)
        pool.run(until=200.0)
        assert job.state is JobState.IDLE  # never matched

    def test_policy_accepts_matching_owner(self):
        from repro.sim.machine import OwnerPolicy

        pool = Pool(PoolConfig(n_machines=0))
        pool.add_machine(
            "picky",
            policy=OwnerPolicy(start_expr='TARGET.owner == "thain"'),
        )
        job = java_job()
        pool.submit(job)
        pool.run_until_done(max_time=10_000)
        assert job.state is JobState.COMPLETED

    def test_job_requirements_respected(self):
        pool = Pool(PoolConfig(n_machines=0))
        pool.add_machine("small", memory=64 * MB)
        pool.add_machine("big", memory=1024 * MB)
        job = java_job(requirements="TARGET.memory >= 512")
        pool.submit(job)
        pool.run_until_done(max_time=10_000)
        assert job.state is JobState.COMPLETED
        assert job.attempts[0].site == "big"

    def test_rank_prefers_better_machine(self):
        pool = Pool(PoolConfig(n_machines=0))
        pool.add_machine("slow", cpu_speed=0.5)
        pool.add_machine("fast", cpu_speed=4.0)
        job = java_job(rank="TARGET.cpuspeed")
        pool.submit(job)
        pool.run_until_done(max_time=10_000)
        assert job.attempts[0].site == "fast"
