"""Machine churn: the leave/rejoin lifecycle and the defenses under it.

A grid is a community of machines that come and go (§2.1); this file
pins the whole churn story: graceful leaves retract ads at the
matchmaker, crash-leaves surface as *explicit* REMOTE_RESOURCE errors at
the schedd (satellite 2), schedds forget a departed site's avoidance
record (satellite 1), the startd's periodic self-test re-admits a
repaired black hole (satellite 3), and the deterministic
:class:`ChurnGenerator` drives all of it reproducibly.
"""

from repro.condor import Job, JobState, Pool, PoolConfig, ProgramImage, Universe
from repro.condor.daemons.config import CondorConfig
from repro.condor.grid import ChurnGenerator, Grid, GridConfig, GridPoolSpec
from repro.core.scope import ErrorScope
from repro.faults import FaultInjector, MisconfiguredJvm
from repro.jvm.program import JavaProgram, Step


def java_job(job_id="1.0", work=5.0, **kw):
    program = JavaProgram(steps=[Step.compute(work)], handles=set())
    return Job(
        job_id=job_id,
        owner="thain",
        universe=Universe.JAVA,
        image=ProgramImage(f"job{job_id}.class", program=program),
        **kw,
    )


def make_pool(n=3, **condor_kw):
    condor = CondorConfig(error_mode="scoped", **condor_kw)
    return Pool(PoolConfig(n_machines=n, condor=condor))


def run_until_running(pool, job, step=1.0, max_time=300.0):
    """Advance the simulation until *job* has a live attempt somewhere."""
    while pool.sim.now < max_time:
        pool.run(pool.sim.now + step)
        if job.state is JobState.RUNNING and job.attempts:
            return job.attempts[-1].site
    raise AssertionError(f"job never started running by t={max_time}")


class TestLeaveLifecycle:
    def test_graceful_leave_retracts_ads_and_parks_the_machine(self):
        pool = make_pool(n=2)
        pool.run(30.0)  # let the startds advertise
        assert "exec000" in pool.matchmaker.machine_ads
        pool.remove_machine("exec000", graceful=True)
        pool.run(pool.sim.now + 5.0)  # the InvalidateAd reaches the matchmaker
        assert "exec000" not in pool.matchmaker.machine_ads
        assert "exec000" not in pool.machines
        assert "exec000" in pool.parked

    def test_crash_leave_ads_age_out_instead(self):
        pool = make_pool(n=2, ad_lifetime=40.0)
        pool.run(10.0)
        assert "exec000" in pool.matchmaker.machine_ads
        pool.remove_machine("exec000", graceful=False)
        # A crashed machine cannot retract its own ads; expiry cleans up.
        pool.run(pool.sim.now + 100.0)
        assert "exec000" not in pool.matchmaker.machine_ads

    def test_rejoin_restores_capacity_under_the_same_name(self):
        pool = make_pool(n=1)
        pool.remove_machine("exec000", graceful=True)
        pool.rejoin_machine("exec000")
        assert "exec000" in pool.machines and not pool.parked
        job = java_job()
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.COMPLETED
        assert job.attempts[-1].site == "exec000"

    def test_rejoined_machine_keeps_its_configuration(self):
        """A black hole that churns is still a black hole: rejoin brings
        the same Machine object back, broken Java and all."""
        pool = make_pool(n=2)
        pool.machines["exec000"].java.classpath_ok = False
        pool.remove_machine("exec000", graceful=True)
        machine = pool.rejoin_machine("exec000")
        assert machine is pool.machines["exec000"]
        assert not machine.java.classpath_ok


class TestCrashMidClaim:
    """Satellite 2: a claimed machine vanishing is an explicit
    REMOTE_RESOURCE error at the schedd -- never a silent hang."""

    def test_crash_mid_claim_is_explicit_claim_lost(self):
        pool = make_pool(n=2)
        job = java_job(work=100.0)
        pool.submit(job)
        site = run_until_running(pool, job)
        pool.remove_machine(site, graceful=False)
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.COMPLETED  # retried on the survivor
        lost = [a for a in job.attempts if a.error_name == "ClaimLost"]
        assert lost, f"no ClaimLost attempt in {[a.error_name for a in job.attempts]}"
        assert lost[0].error_scope is ErrorScope.REMOTE_RESOURCE
        assert lost[0].site == site
        assert job.attempts[-1].site != site

    def test_graceful_leave_mid_claim_is_explicit_eviction(self):
        pool = make_pool(n=2)
        job = java_job(work=100.0)
        pool.submit(job)
        site = run_until_running(pool, job)
        pool.remove_machine(site, graceful=True)
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.COMPLETED
        evicted = [a for a in job.attempts if a.error_scope is not None]
        assert evicted and evicted[0].site == site
        assert evicted[0].error_scope is ErrorScope.REMOTE_RESOURCE


class TestForgetSiteOnLeave:
    """Satellite 1: a departed machine's avoidance record is evicted, so
    the schedd's strike tables cannot grow without bound under churn."""

    def test_strikes_and_windows_are_dropped_on_removal(self):
        pool = make_pool(n=2, schedd_avoidance=True, avoidance_threshold=1,
                         avoidance_base=1000.0)
        schedd = pool.schedd
        for _ in range(3):
            schedd._note_site_failure("exec000")
        assert "exec000" in schedd.site_failures
        assert "exec000" in schedd.avoided_sites
        pool.remove_machine("exec000", graceful=True)
        assert "exec000" not in schedd.site_failures
        assert "exec000" not in schedd.avoided_sites

    def test_every_schedd_forgets_not_just_the_first(self):
        pool = make_pool(n=2, avoidance_threshold=1)
        second = pool.add_schedd("submit001")
        for schedd in (pool.schedd, second):
            schedd._note_site_failure("exec001")
        pool.remove_machine("exec001", graceful=False)
        assert "exec001" not in pool.schedd.site_failures
        assert "exec001" not in second.site_failures

    def test_rejoined_site_starts_with_a_clean_record(self):
        pool = make_pool(n=2, avoidance_threshold=1)
        pool.schedd._note_site_failure("exec000")
        pool.remove_machine("exec000", graceful=True)
        pool.rejoin_machine("exec000")
        assert "exec000" not in pool.schedd.site_failures


class TestSelfTestReprobe:
    """Satellite 3: the §5 startd self-test re-probes on an interval, so
    a black hole repaired mid-run re-advertises Java and takes work."""

    def test_repaired_black_hole_readmits_and_completes(self):
        pool = make_pool(
            n=1, startd_self_test=True, self_test_interval=30.0,
        )
        injector = FaultInjector(pool)
        # Broken from t=0, repaired at t=100: only the periodic re-probe
        # can notice the repair.
        injector.schedule(MisconfiguredJvm("exec000"), at=0.0, until=100.0)
        job = java_job()
        pool.submit(job)
        pool.run(50.0)
        startd = pool.startds["exec000"]
        assert startd.self_test_result is False
        assert not startd.java_advertised
        assert job.state is not JobState.COMPLETED
        pool.run_until_done(max_time=50_000)
        assert startd.self_test_result is True
        assert startd.java_advertised
        assert job.state is JobState.COMPLETED
        assert job.attempts[-1].site == "exec000"

    def test_without_reprobe_the_boot_result_goes_stale(self):
        """Interval 0 restores the paper's boot-only self-test: a break
        after boot is never noticed, so the startd keeps advertising
        Java it cannot actually run -- the black hole in §5."""
        pool = make_pool(
            n=1, startd_self_test=True, self_test_interval=0.0,
        )
        injector = FaultInjector(pool)
        injector.schedule(MisconfiguredJvm("exec000"), at=0.0)
        job = java_job()
        pool.submit(job)
        pool.run(500.0)
        assert pool.startds["exec000"].java_advertised  # stale boot verdict
        assert job.state is not JobState.COMPLETED


class TestChurnGenerator:
    def _grid(self, seed=0):
        return Grid(GridConfig(
            pools=(GridPoolSpec("a", n_machines=4),),
            seed=seed, flocking=False,
        ))

    def _counts(self, seed):
        grid = self._grid(seed)
        churn = ChurnGenerator(
            grid, grid.rngs.stream("churn"),
            mean_interval=30.0, mean_downtime=20.0, stop=600.0,
        )
        grid.run(1000.0)
        return churn.leaves, churn.joins, churn.crashes

    def test_same_seed_same_churn_schedule(self):
        assert self._counts(7) == self._counts(7)

    def test_different_seeds_differ(self):
        schedules = {self._counts(seed) for seed in range(5)}
        assert len(schedules) > 1

    def test_machines_leave_and_rejoin(self):
        leaves, joins, crashes = self._counts(0)
        assert leaves > 0
        assert joins > 0
        assert crashes <= leaves

    def test_min_alive_floor_is_respected(self):
        grid = self._grid()
        ChurnGenerator(
            grid, grid.rngs.stream("churn"),
            mean_interval=5.0, mean_downtime=500.0, min_alive=2,
        )
        for _ in range(50):
            grid.run(grid.sim.now + 20.0)
            assert len(grid.machines) >= 2

    def test_jobs_complete_through_churn(self):
        grid = self._grid()
        ChurnGenerator(
            grid, grid.rngs.stream("churn"),
            mean_interval=40.0, mean_downtime=30.0, min_alive=1,
        )
        jobs = [java_job(job_id=f"{i}.0", work=20.0) for i in range(8)]
        for i, job in enumerate(jobs):
            grid.submit_at(job, when=5.0 * i)
        grid.run_until_done(max_time=100_000)
        assert all(job.state is JobState.COMPLETED for job in jobs)
