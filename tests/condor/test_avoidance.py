"""The backoff-hardened §5 schedd defense: SiteAvoidance unit tests.

The paper's "detect and avoid hosts with chronic failures" was a
permanent blacklist; under churn the sentence must be finite.  These
tests pin the backoff schedule, the probation semantics at window
expiry, the success amnesty, and the churn eviction hook.
"""

import math

from repro.condor.daemons.avoidance import SiteAvoidance
from repro.condor.daemons.config import CondorConfig


def make_avoidance(mode="backoff", threshold=2, base=60.0, cap=480.0):
    return SiteAvoidance(CondorConfig(
        schedd_avoidance=True,
        avoidance_mode=mode,
        avoidance_threshold=threshold,
        avoidance_base=base,
        avoidance_cap=cap,
    ))


class TestThreshold:
    def test_below_threshold_no_window(self):
        av = make_avoidance(threshold=3)
        assert not av.note_failure("exec000", now=0.0)
        assert not av.note_failure("exec000", now=1.0)
        assert not av.is_avoided("exec000", now=2.0)

    def test_threshold_strike_engages(self):
        av = make_avoidance(threshold=2, base=60.0)
        av.note_failure("exec000", now=0.0)
        assert av.note_failure("exec000", now=1.0)
        assert av.is_avoided("exec000", now=2.0)
        assert av.avoided(now=2.0) == {"exec000"}

    def test_disabled_defense_never_avoids(self):
        av = SiteAvoidance(CondorConfig(schedd_avoidance=False,
                                        avoidance_threshold=1))
        for t in range(5):
            assert not av.note_failure("exec000", now=float(t))
        assert not av.is_avoided("exec000", now=10.0)
        # Strikes are still counted (they feed diagnostics).
        assert av.failures["exec000"] == 5


class TestBackoffSchedule:
    def test_window_doubles_per_strike_and_caps(self):
        av = make_avoidance(threshold=1, base=60.0, cap=200.0)
        av.note_failure("exec000", now=0.0)
        assert av.is_avoided("exec000", now=59.0)
        assert not av.is_avoided("exec000", now=60.0)  # 60s window
        av.note_failure("exec000", now=100.0)
        assert av.is_avoided("exec000", now=219.0)
        assert not av.is_avoided("exec000", now=220.0)  # doubled: 120s
        av.note_failure("exec000", now=300.0)
        assert not av.is_avoided("exec000", now=501.0)  # capped at 200s

    def test_sites_are_independent(self):
        av = make_avoidance(threshold=1)
        av.note_failure("exec000", now=0.0)
        assert av.is_avoided("exec000", now=1.0)
        assert not av.is_avoided("exec001", now=1.0)


class TestProbation:
    def test_expiry_keeps_strikes_one_failure_reavoids(self):
        av = make_avoidance(threshold=2, base=60.0)
        av.note_failure("exec000", now=0.0)
        av.note_failure("exec000", now=1.0)  # window until 61
        assert not av.is_avoided("exec000", now=100.0)  # probation
        assert av.failures["exec000"] == 2  # record survives expiry
        # One more failure re-avoids immediately (and doubles the window).
        assert av.note_failure("exec000", now=100.0)
        assert av.is_avoided("exec000", now=219.0)

    def test_success_clears_the_whole_record(self):
        av = make_avoidance(threshold=2)
        av.note_failure("exec000", now=0.0)
        av.note_failure("exec000", now=1.0)
        av.note_success("exec000", now=100.0)
        assert "exec000" not in av.failures
        assert not av.is_avoided("exec000", now=100.0)
        # The site starts from zero strikes again.
        assert not av.note_failure("exec000", now=101.0)


class TestPermanentMode:
    def test_blacklist_never_expires(self):
        av = make_avoidance(mode="permanent", threshold=2)
        av.note_failure("exec000", now=0.0)
        av.note_failure("exec000", now=1.0)
        assert av._avoid_until["exec000"] == math.inf
        assert av.is_avoided("exec000", now=10.0**9)


class TestForget:
    def test_forget_drops_strikes_and_window(self):
        av = make_avoidance(threshold=1)
        av.note_failure("exec000", now=0.0)
        av.forget("exec000")
        assert "exec000" not in av.failures
        assert not av.is_avoided("exec000", now=0.0)

    def test_forget_unknown_site_is_a_noop(self):
        av = make_avoidance()
        av.forget("never-seen")  # no KeyError
