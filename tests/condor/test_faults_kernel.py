"""Fault-path integration tests: the paper's §2.3/§4 story end to end.

Each test injects one fault from the catalogue and checks where the
resulting error lands under the naive and the scoped configurations.
"""

import pytest

from repro.condor import Job, JobState, Pool, PoolConfig, ProgramImage, Universe
from repro.condor.daemons.config import CondorConfig
from repro.core.result import ResultFile, ResultStatus
from repro.core.scope import ErrorScope
from repro.faults import (
    CorruptProgramImage,
    CredentialExpiry,
    FaultInjector,
    HomeDiskFull,
    HomeFilesystemOffline,
    JvmBinaryMissing,
    MemoryPressure,
    MisconfiguredJvm,
    MissingInputFile,
    ScratchDiskFull,
)
from repro.jvm.program import JavaProgram, Step

MB = 2**20


def java_job(job_id="1.0", steps=None, handles=None, **kw):
    program = JavaProgram(steps=steps or [Step.compute(5.0)], handles=handles or set())
    return Job(
        job_id=job_id,
        owner="thain",
        universe=Universe.JAVA,
        image=ProgramImage(f"job{job_id}.class", program=program),
        **kw,
    )


def make_pool(mode="scoped", n=3, **condor_kw):
    condor = CondorConfig(error_mode=mode, **condor_kw)
    return Pool(PoolConfig(n_machines=n, condor=condor))


class TestScopedPropagation:
    """Under the fixed system, each fault lands at its Figure-3 scope."""

    def test_misconfigured_jvm_retried_elsewhere(self):
        pool = make_pool()
        injector = FaultInjector(pool)
        injector.schedule(MisconfiguredJvm("exec000"))
        job = java_job()
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.COMPLETED  # retried and succeeded
        failed = [a for a in job.attempts if a.error_scope is not None]
        assert failed and failed[0].site == "exec000"
        assert failed[0].error_scope is ErrorScope.REMOTE_RESOURCE

    def test_memory_pressure_is_vm_scope_and_retried(self):
        pool = make_pool()
        injector = FaultInjector(pool)
        injector.schedule(MemoryPressure("exec000", 250 * MB))
        job = java_job(
            steps=[Step.allocate(64 * MB), Step.compute(1.0)],
            heap_request=128 * MB,
        )
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.COMPLETED
        failed = [a for a in job.attempts if a.error_scope is not None]
        assert failed and failed[0].error_scope is ErrorScope.VIRTUAL_MACHINE
        assert failed[0].error_name == "OutOfMemoryError"

    def test_corrupt_image_held_as_unexecutable(self):
        pool = make_pool()
        job = java_job()
        pool.submit(job)
        FaultInjector(pool).schedule(CorruptProgramImage(job.job_id))
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.HELD
        assert "unexecutable" in job.hold_reason
        assert len(job.attempts) == 1  # no pointless retries for job scope

    def test_missing_input_held_as_unexecutable(self):
        pool = make_pool()
        job = java_job()
        pool.submit(job)
        FaultInjector(pool).schedule(MissingInputFile(job.job_id))
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.HELD
        assert len(job.attempts) == 1

    def test_jvm_binary_missing_retried_elsewhere(self):
        pool = make_pool()
        FaultInjector(pool).schedule(JvmBinaryMissing("exec000"))
        job = java_job()
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.COMPLETED
        failed = [a for a in job.attempts if a.error_scope is not None]
        assert failed and failed[0].site == "exec000"
        assert failed[0].error_name.startswith("JvmBinaryMissing")
        assert failed[0].error_scope is ErrorScope.REMOTE_RESOURCE

    def test_scratch_disk_full_retried_elsewhere(self):
        pool = make_pool()
        FaultInjector(pool).schedule(ScratchDiskFull("exec000"))
        job = java_job()
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.COMPLETED
        failed = [a for a in job.attempts if a.error_scope is not None]
        assert failed[0].error_scope is ErrorScope.REMOTE_RESOURCE

    def test_transient_home_fs_outage_retried_until_it_heals(self):
        pool = make_pool()
        injector = FaultInjector(pool)
        pool.home_fs.write_file("/home/user/in.dat", b"x")
        injector.schedule(HomeFilesystemOffline(), at=0.0, until=400.0)
        job = java_job(steps=[Step.read("/home/user/in.dat"), Step.exit(0)])
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.COMPLETED
        assert any(
            a.error_scope is ErrorScope.LOCAL_RESOURCE for a in job.attempts[:-1]
        )

    def test_credential_expiry_is_local_resource(self):
        pool = make_pool()
        injector = FaultInjector(pool)
        pool.home_fs.write_file("/home/user/in.dat", b"x")
        injector.schedule(CredentialExpiry(), at=0.0, until=400.0)
        job = java_job(steps=[Step.read("/home/user/in.dat"), Step.exit(0)])
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.COMPLETED
        failed = [a for a in job.attempts if a.error_scope is not None]
        assert failed and failed[0].error_scope is ErrorScope.LOCAL_RESOURCE
        assert failed[0].error_name == "CredentialExpiredError"

    def test_home_disk_full_is_program_result(self):
        """DiskFull is *within* the I/O contract: the program sees it."""
        pool = make_pool()
        FaultInjector(pool).schedule(HomeDiskFull())
        job = java_job(steps=[Step.write("/home/user/out", b"data")])
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.COMPLETED
        assert job.final_result.status is ResultStatus.EXCEPTION
        assert job.final_result.exception_name == "DiskFullException"

    def test_user_visible_errors_scoped_is_zero_for_transients(self):
        pool = make_pool()
        FaultInjector(pool).schedule(MisconfiguredJvm("exec000"))
        jobs = [java_job(f"1.{i}") for i in range(5)]
        for job in jobs:
            pool.submit(job)
        pool.run_until_done(max_time=100_000)
        assert all(j.state is JobState.COMPLETED for j in jobs)
        assert pool.userlog.user_visible_errors() == []


class TestNaivePropagation:
    """Under the §2.3 system, the same faults land on the user."""

    def test_misconfigured_jvm_returned_to_user(self):
        pool = make_pool(mode="naive", n=1)
        FaultInjector(pool).schedule(MisconfiguredJvm("exec000"))
        job = java_job()
        job.expected_result = ResultFile.completed(0)
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        # The bare JVM exits 1; the naive system sells it as a result.
        assert job.state is JobState.COMPLETED
        assert job.final_result.exit_code == 1
        assert len(job.attempts) == 1  # no retry: the user got the mess

    def test_memory_pressure_returned_to_user(self):
        pool = make_pool(mode="naive", n=1)
        FaultInjector(pool).schedule(MemoryPressure("exec000", 250 * MB))
        job = java_job(steps=[Step.allocate(64 * MB)], heap_request=128 * MB)
        job.expected_result = ResultFile.completed(0)
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.COMPLETED
        assert job.final_result.exit_code == 1

    def test_naive_p1_violation_detected_by_auditor(self):
        from repro.core.principles import PrincipleAuditor

        pool = make_pool(mode="naive", n=1)
        injector = FaultInjector(pool)
        injector.schedule(MisconfiguredJvm("exec000"))
        job = java_job()
        job.expected_result = ResultFile.completed(0)
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        auditor = PrincipleAuditor()
        violations = auditor.audit_outcomes(injector.audit_outcomes([job]))
        assert len(violations) == 1
        assert violations[0].principle == 1

    def test_scoped_produces_no_p1_violation(self):
        from repro.core.principles import PrincipleAuditor

        pool = make_pool(mode="scoped")
        injector = FaultInjector(pool)
        injector.schedule(MisconfiguredJvm("exec000"))
        job = java_job()
        job.expected_result = ResultFile.completed(0)
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        auditor = PrincipleAuditor()
        violations = auditor.audit_outcomes(injector.audit_outcomes([job]))
        assert violations == []

    def test_naive_p3_misdelivery_recorded(self):
        from repro.core.propagation import EventType

        pool = make_pool(mode="naive", n=1)
        FaultInjector(pool).schedule(ScratchDiskFull("exec000"))
        job = java_job()
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        # Starter-detected error -> naive schedd returns it to the user.
        assert job.state is JobState.HELD
        assert pool.trace.count(EventType.MISHANDLED) == 1

    def test_scoped_trace_shows_correct_delivery(self):
        from repro.core.propagation import EventType

        pool = make_pool(mode="scoped")
        FaultInjector(pool).schedule(MisconfiguredJvm("exec000"))
        job = java_job(rank='ifThenElse(TARGET.machine == "exec000", 10, 0)')
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert pool.trace.count(EventType.DELIVERED) >= 1
        assert pool.trace.count(EventType.MISHANDLED) == 0


class TestInjectorMechanics:
    def test_schedule_future_fault(self):
        pool = make_pool()
        injector = FaultInjector(pool)
        fault = HomeFilesystemOffline()
        injector.schedule(fault, at=100.0, until=200.0)
        assert pool.home_fs.online
        pool.run(until=150.0)
        assert not pool.home_fs.online
        pool.run(until=250.0)
        assert pool.home_fs.online

    def test_truth_for_attempt_overlap(self):
        pool = make_pool()
        injector = FaultInjector(pool)
        injector.schedule(MisconfiguredJvm("exec000"), at=10.0, until=20.0)
        assert injector.truth_for_attempt("exec000", "j", 15.0, 25.0) is ErrorScope.REMOTE_RESOURCE
        assert injector.truth_for_attempt("exec000", "j", 30.0, 40.0) is None
        assert injector.truth_for_attempt("exec001", "j", 15.0, 25.0) is None

    def test_truth_widest_scope_wins(self):
        pool = make_pool()
        injector = FaultInjector(pool)
        injector.schedule(MisconfiguredJvm("exec000"))
        job = java_job("9.9")
        pool.submit(job)
        injector.schedule(CorruptProgramImage("9.9"))
        truth = injector.truth_for_attempt("exec000", "9.9", 0.0, 10.0)
        assert truth is ErrorScope.JOB

    def test_fault_describe(self):
        fault = MisconfiguredJvm("exec000")
        assert "MisconfiguredJvm" in fault.describe()
        assert "exec000" in fault.describe()
