"""Public-API surface checks: imports, exports, and documentation."""

import importlib
import pkgutil

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.analysis",
    "repro.analysis.journeys",
    "repro.bench",
    "repro.bench.compare",
    "repro.bench.runner",
    "repro.campaign",
    "repro.campaign.cli",
    "repro.campaign.corpus",
    "repro.campaign.coverage",
    "repro.campaign.engine",
    "repro.campaign.fuzz",
    "repro.campaign.report",
    "repro.campaign.shrink",
    "repro.campaign.spec",
    "repro.chirp",
    "repro.chirp.auth",
    "repro.chirp.client",
    "repro.chirp.protocol",
    "repro.chirp.proxy",
    "repro.condor",
    "repro.condor.classads",
    "repro.condor.classads.ad",
    "repro.condor.classads.compile",
    "repro.condor.classads.expr",
    "repro.condor.classads.lexer",
    "repro.condor.classads.parser",
    "repro.condor.daemons",
    "repro.condor.daemons.avoidance",
    "repro.condor.daemons.config",
    "repro.condor.daemons.match_index",
    "repro.condor.daemons.matchmaker",
    "repro.condor.daemons.schedd",
    "repro.condor.daemons.shadow",
    "repro.condor.daemons.startd",
    "repro.condor.daemons.starter",
    "repro.condor.grid",
    "repro.condor.job",
    "repro.condor.pool",
    "repro.condor.protocols",
    "repro.condor.submit",
    "repro.condor.tools",
    "repro.condor.userlog",
    "repro.core",
    "repro.core.classify",
    "repro.core.errors",
    "repro.core.interfaces",
    "repro.core.principles",
    "repro.core.propagation",
    "repro.core.result",
    "repro.core.scope",
    "repro.core.timescope",
    "repro.e2e",
    "repro.e2e.manager",
    "repro.e2e.validator",
    "repro.faults",
    "repro.faults.faults",
    "repro.faults.injector",
    "repro.harness",
    "repro.harness.experiments",
    "repro.harness.metrics",
    "repro.harness.parallel",
    "repro.harness.replicate",
    "repro.harness.report",
    "repro.harness.workloads",
    "repro.jvm",
    "repro.jvm.machine",
    "repro.jvm.program",
    "repro.jvm.throwables",
    "repro.jvm.wrapper",
    "repro.obs",
    "repro.obs.bus",
    "repro.obs.console",
    "repro.obs.export",
    "repro.obs.metrics",
    "repro.obs.profile",
    "repro.obs.sanitize",
    "repro.obs.signature",
    "repro.obs.span",
    "repro.obs.store",
    "repro.obs.store.ingest",
    "repro.obs.store.query",
    "repro.obs.web",
    "repro.pvm",
    "repro.pvm.program",
    "repro.remoteio",
    "repro.remoteio.rpc",
    "repro.remoteio.server",
    "repro.service",
    "repro.service.api",
    "repro.service.auth",
    "repro.service.client",
    "repro.service.errors",
    "repro.service.executor",
    "repro.service.server",
    "repro.service.specs",
    "repro.service.store",
    "repro.sim",
    "repro.sim.engine",
    "repro.sim.filesystem",
    "repro.sim.machine",
    "repro.sim.network",
    "repro.sim.process",
    "repro.sim.rng",
]


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_imports_and_is_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


def test_no_unlisted_public_modules():
    """Every importable repro module is in the list above (keeps the list
    honest as the package grows)."""
    found = {"repro"}
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        found.add(info.name)
    assert found == set(PUBLIC_MODULES)


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_all_exports_documented():
    """Every class/function exported at the top level has a docstring."""
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj):
            assert obj.__doc__, f"repro.{name} lacks a docstring"


def test_version():
    assert repro.__version__ == "1.0.0"
