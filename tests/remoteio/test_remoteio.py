"""Unit tests for the shadow's remote I/O channel."""

import pytest

from repro.remoteio.rpc import Credential, RpcClient, RpcReply, RpcRequest
from repro.remoteio.server import RemoteIoServer, SyncFsAdapter
from repro.sim.engine import Simulator
from repro.sim.filesystem import LocalFileSystem, NfsClient
from repro.sim.network import ConnectionTimedOut, Network


class Rig:
    def __init__(self, credential_required=True, nfs=None):
        self.sim = Simulator()
        self.net = Network(self.sim)
        self.fs = LocalFileSystem("home", capacity=10_000, sim=self.sim)
        self.fs.mkdir("/home", parents=True)
        self.fs.write_file("/home/data", b"bytes")
        backend = nfs if nfs is not None else SyncFsAdapter(self.fs)
        self.server = RemoteIoServer(
            self.sim, self.net, "submit", 7000, backend,
            credential_required=credential_required,
        )

    def call(self, request, timeout=10.0):
        box = []

        def client(sim):
            conn = yield from self.net.connect("client", "submit", 7000)
            rpc = RpcClient(conn, timeout=timeout)
            try:
                reply = yield from rpc.call(request)
                box.append(reply)
            except Exception as exc:  # noqa: BLE001 - tests inspect it
                box.append(exc)
            conn.close()

        self.sim.spawn(client(self.sim)).defuse()
        while not box and self.sim.step():
            pass
        return box[0]


GOOD = Credential("user")


class TestCredentials:
    def test_valid_credential_accepted(self):
        reply = Rig().call(RpcRequest("read_file", "/home/data", credential=GOOD))
        assert reply.ok and reply.data == b"bytes"

    def test_missing_credential_rejected(self):
        reply = Rig().call(RpcRequest("read_file", "/home/data"))
        assert not reply.ok and reply.error == "BAD_CREDENTIAL"

    def test_expired_credential_rejected(self):
        expired = Credential("user", expires_at=0.0)
        reply = Rig().call(RpcRequest("read_file", "/home/data", credential=expired))
        assert not reply.ok and reply.error == "CREDENTIAL_EXPIRED"

    def test_credential_validity_window(self):
        cred = Credential("user", expires_at=100.0)
        assert cred.valid_at(99.9)
        assert not cred.valid_at(100.0)

    def test_anonymous_server_skips_check(self):
        rig = Rig(credential_required=False)
        reply = rig.call(RpcRequest("read_file", "/home/data"))
        assert reply.ok


class TestOperations:
    def test_write_then_read(self):
        rig = Rig()
        assert rig.call(RpcRequest("write_file", "/home/out", b"w", credential=GOOD)).ok
        assert rig.fs.read_file("/home/out") == b"w"

    def test_stat_and_listdir(self):
        rig = Rig()
        assert rig.call(RpcRequest("stat", "/home/data", credential=GOOD)).ok
        reply = rig.call(RpcRequest("listdir", "/home", credential=GOOD))
        assert reply.ok and reply.listing == ("data",)

    def test_fs_errors_pass_through(self):
        rig = Rig()
        reply = rig.call(RpcRequest("read_file", "/home/none", credential=GOOD))
        assert not reply.ok and reply.error == "ENOENT"

    def test_unknown_op_rejected(self):
        reply = Rig().call(RpcRequest("chmod", "/home/data", credential=GOOD))
        assert not reply.ok and reply.error == "BAD_OP"

    def test_garbage_request_rejected(self):
        rig = Rig()
        box = []

        def client(sim):
            conn = yield from rig.net.connect("client", "submit", 7000)
            conn.send("garbage")
            reply = yield from conn.recv(timeout=10.0)
            box.append(reply)
            conn.close()

        rig.sim.spawn(client(rig.sim)).defuse()
        while not box and rig.sim.step():
            pass
        assert not box[0].ok and box[0].error == "BAD_REQUEST"

    def test_multiple_requests_one_connection(self):
        rig = Rig()
        box = []

        def client(sim):
            conn = yield from rig.net.connect("client", "submit", 7000)
            rpc = RpcClient(conn)
            for _ in range(3):
                reply = yield from rpc.call(
                    RpcRequest("read_file", "/home/data", credential=GOOD)
                )
                box.append(reply.ok)
            conn.close()

        rig.sim.spawn(client(rig.sim)).defuse()
        rig.sim.run(until=10.0)
        assert box == [True, True, True]
        assert rig.server.requests_served == 3


class TestNfsBackedServer:
    def test_soft_mount_timeout_surfaces_as_explicit_error(self):
        sim_holder = Rig()  # throwaway to reuse structure
        sim = Simulator()
        net = Network(sim)
        nfs_server = LocalFileSystem("nfs", sim=sim)
        nfs_server.mkdir("/home", parents=True)
        nfs_server.write_file("/home/data", b"x")
        mount = NfsClient(sim, nfs_server, mode="soft", soft_timeout=2.0,
                          retry_interval=0.5)
        server = RemoteIoServer(sim, net, "submit", 7000, mount)
        nfs_server.set_online(False)
        box = []

        def client(s):
            conn = yield from net.connect("client", "submit", 7000)
            rpc = RpcClient(conn, timeout=30.0)
            reply = yield from rpc.call(
                RpcRequest("read_file", "/home/data", credential=GOOD)
            )
            box.append(reply)

        sim.spawn(client(sim)).defuse()
        while not box and sim.step():
            pass
        assert not box[0].ok and box[0].error == "ETIMEDOUT"

    def test_hard_mount_outage_starves_the_rpc(self):
        sim = Simulator()
        net = Network(sim)
        nfs_server = LocalFileSystem("nfs", sim=sim)
        nfs_server.mkdir("/home", parents=True)
        nfs_server.write_file("/home/data", b"x")
        mount = NfsClient(sim, nfs_server, mode="hard", retry_interval=0.5)
        RemoteIoServer(sim, net, "submit", 7000, mount)
        nfs_server.set_online(False)
        box = []

        def client(s):
            conn = yield from net.connect("client", "submit", 7000)
            rpc = RpcClient(conn, timeout=5.0)
            try:
                yield from rpc.call(RpcRequest("read_file", "/home/data", credential=GOOD))
            except ConnectionTimedOut:
                box.append("rpc timeout")

        sim.spawn(client(sim)).defuse()
        while not box and sim.step():
            pass
        # The hang propagated upward as a *transport* timeout -- the
        # indeterminate-scope situation of §5.
        assert box == ["rpc timeout"]
