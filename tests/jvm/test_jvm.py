"""Tests for the simulated JVM: Figure-4 exit codes, wrapper recovery."""

import pytest

from repro.chirp.client import LocalIoLibrary
from repro.condor.job import ProgramImage
from repro.core.result import ResultStatus
from repro.core.scope import ErrorScope
from repro.jvm.machine import Jvm, JvmExecError
from repro.jvm.program import JavaProgram, Step
from repro.jvm.throwables import (
    JError,
    JFileNotFoundException,
    JOutOfMemoryError,
    JRuntimeException,
    Throwable,
    throwable_by_name,
)
from repro.sim.engine import Simulator
from repro.sim.machine import JavaInstallation, Machine

MB = 2**20


def make_rig(memory=256 * MB, java=None):
    sim = Simulator()
    machine = Machine(sim, "exec1", memory=memory, java=java)
    machine.scratch.mkdir("/scratch/job", parents=True)
    return sim, machine


def run_bare(sim, machine, program, image=None, heap=32 * MB, java=None):
    jvm = Jvm(sim, machine, installation=java)
    io = LocalIoLibrary(machine.scratch, "/scratch/job")
    image = image or ProgramImage("Main.class", program=program)
    proc = machine.processes.spawn("java", jvm.run_bare(image, program, io, heap))
    sim.run()
    return proc.status


def run_wrapped(sim, machine, program, image=None, heap=32 * MB, java=None):
    from repro.core.classify import DEFAULT_CLASSIFIER
    from repro.core.result import ResultFile

    jvm = Jvm(sim, machine, installation=java)
    io = LocalIoLibrary(machine.scratch, "/scratch/job")
    image = image or ProgramImage("Main.class", program=program)
    sink: list[bytes] = []
    proc = machine.processes.spawn(
        "java-wrapper",
        jvm.run_wrapped(image, program, io, heap, DEFAULT_CLASSIFIER, sink.append),
    )
    sim.run()
    result = ResultFile.parse(sink[0]) if sink else None
    return proc.status, result


class TestThrowables:
    def test_hierarchy(self):
        assert issubclass(JOutOfMemoryError, JError)
        assert issubclass(JFileNotFoundException, Throwable)
        assert not issubclass(JFileNotFoundException, JError)

    def test_throwable_by_name_known(self):
        exc = throwable_by_name("OutOfMemoryError")
        assert isinstance(exc, JOutOfMemoryError)

    def test_throwable_by_name_custom(self):
        exc = throwable_by_name("MySimulationException", "user stuff")
        assert exc.java_name == "MySimulationException"
        assert isinstance(exc, Throwable)
        assert not isinstance(exc, JError)

    def test_scope_hints(self):
        assert JOutOfMemoryError.scope_hint is ErrorScope.VIRTUAL_MACHINE


class TestBareJvmFigure4:
    """The seven rows of Figure 4 against the bare JVM."""

    def test_complete_main_is_zero(self):
        sim, machine = make_rig()
        status = run_bare(sim, machine, JavaProgram(steps=[Step.compute(1.0)]))
        assert status.code == 0

    def test_system_exit_x_is_x(self):
        sim, machine = make_rig()
        status = run_bare(sim, machine, JavaProgram(steps=[Step.exit(42)]))
        assert status.code == 42

    def test_null_pointer_is_one(self):
        sim, machine = make_rig()
        status = run_bare(
            sim, machine, JavaProgram(steps=[Step.throw("NullPointerException")])
        )
        assert status.code == 1

    def test_out_of_memory_is_one(self):
        sim, machine = make_rig()
        status = run_bare(
            sim,
            machine,
            JavaProgram(steps=[Step.allocate(64 * MB)]),
            heap=32 * MB,
        )
        assert status.code == 1

    def test_misconfigured_installation_is_one(self):
        sim, machine = make_rig(java=JavaInstallation(classpath_ok=False))
        status = run_bare(
            sim,
            machine,
            JavaProgram(steps=[Step.compute(1.0)]),
            java=JavaInstallation(classpath_ok=False),
        )
        assert status.code == 1

    def test_corrupt_image_is_one(self):
        sim, machine = make_rig()
        program = JavaProgram(steps=[Step.compute(1.0)])
        image = ProgramImage("Main.class", program=program, corrupt=True)
        status = run_bare(sim, machine, program, image=image)
        assert status.code == 1

    def test_figure_4_ambiguity(self):
        """The point of Figure 4: all failures produce the same code 1."""
        codes = set()
        for scenario in ("npe", "oom", "badjava", "corrupt"):
            if scenario == "npe":
                sim, machine = make_rig()
                status = run_bare(
                    sim, machine, JavaProgram(steps=[Step.throw("NullPointerException")])
                )
            elif scenario == "oom":
                sim, machine = make_rig()
                status = run_bare(
                    sim, machine, JavaProgram(steps=[Step.allocate(999 * MB)])
                )
            elif scenario == "badjava":
                bad = JavaInstallation(classpath_ok=False)
                sim, machine = make_rig(java=bad)
                status = run_bare(sim, machine, JavaProgram(), java=bad)
            else:
                sim, machine = make_rig()
                program = JavaProgram(steps=[Step.compute(0.1)])
                status = run_bare(
                    sim,
                    machine,
                    program,
                    image=ProgramImage("X", program=program, corrupt=True),
                )
            codes.add(status.code)
        assert codes == {1}  # indistinguishable, as the paper complains


class TestWrappedJvm:
    """The wrapper recovers the scope that the exit code destroys (§4)."""

    def test_completion(self):
        sim, machine = make_rig()
        status, result = run_wrapped(sim, machine, JavaProgram(steps=[Step.compute(1.0)]))
        assert status.code == 0
        assert result.status is ResultStatus.COMPLETED
        assert result.exit_code == 0

    def test_system_exit_recorded(self):
        sim, machine = make_rig()
        _, result = run_wrapped(sim, machine, JavaProgram(steps=[Step.exit(7)]))
        assert result.status is ResultStatus.COMPLETED
        assert result.exit_code == 7

    def test_program_exception_is_program_result(self):
        sim, machine = make_rig()
        _, result = run_wrapped(
            sim,
            machine,
            JavaProgram(steps=[Step.throw("ArrayIndexOutOfBoundsException")]),
        )
        assert result.status is ResultStatus.EXCEPTION
        assert result.exception_name == "ArrayIndexOutOfBoundsException"
        assert result.is_program_result

    def test_oom_is_virtual_machine_scope(self):
        sim, machine = make_rig()
        _, result = run_wrapped(
            sim, machine, JavaProgram(steps=[Step.allocate(64 * MB)]), heap=32 * MB
        )
        assert result.status is ResultStatus.ENVIRONMENT
        assert result.scope is ErrorScope.VIRTUAL_MACHINE
        assert result.error_name == "OutOfMemoryError"

    def test_machine_memory_pressure_is_vm_scope(self):
        """Heap within the JVM limit, but the machine itself is short of
        memory (another tenant has it): still virtual-machine scope."""
        sim, machine = make_rig(memory=32 * MB)
        machine.alloc(20 * MB)  # a competing tenant
        _, result = run_wrapped(
            sim,
            machine,
            JavaProgram(steps=[Step.allocate(24 * MB)]),
            heap=32 * MB,
        )
        assert result.status is ResultStatus.ENVIRONMENT
        assert result.scope is ErrorScope.VIRTUAL_MACHINE

    def test_corrupt_image_is_job_scope(self):
        sim, machine = make_rig()
        program = JavaProgram(steps=[Step.compute(1.0)])
        _, result = run_wrapped(
            sim,
            machine,
            program,
            image=ProgramImage("Main.class", program=program, corrupt=True),
        )
        assert result.status is ResultStatus.ENVIRONMENT
        assert result.scope is ErrorScope.JOB
        assert result.error_name == "ClassFormatError"

    def test_misconfigured_jvm_leaves_no_result_file(self):
        """If the JVM cannot boot, the wrapper never runs: exit 1 and no
        result file -- the starter's cue for a remote-resource error."""
        bad = JavaInstallation(classpath_ok=False)
        sim, machine = make_rig(java=bad)
        status, result = run_wrapped(sim, machine, JavaProgram(), java=bad)
        assert status.code == 1
        assert result is None

    def test_handled_exception_continues(self):
        sim, machine = make_rig()
        machine.scratch.write_file("/scratch/job/later", b"x")
        program = JavaProgram(
            steps=[Step.read("missing"), Step.read("later"), Step.exit(0)],
            handles={"FileNotFoundException"},
        )
        _, result = run_wrapped(sim, machine, program)
        assert result.status is ResultStatus.COMPLETED

    def test_unhandled_io_exception_is_program_result(self):
        sim, machine = make_rig()
        program = JavaProgram(steps=[Step.read("missing")])
        _, result = run_wrapped(sim, machine, program)
        assert result.status is ResultStatus.EXCEPTION
        assert result.exception_name == "FileNotFoundException"


class TestJvmMechanics:
    def test_exec_error_for_missing_binary(self):
        sim, machine = make_rig()
        jvm = Jvm(sim, machine, installation=JavaInstallation(binary_ok=False))
        with pytest.raises(JvmExecError):
            jvm.check_exec()

    def test_heap_accounting(self):
        sim, machine = make_rig()
        jvm = Jvm(sim, machine)
        jvm.heap_limit = 100
        jvm.heap_alloc(60)
        jvm.heap_free(30)
        jvm.heap_alloc(60)
        with pytest.raises(JOutOfMemoryError):
            jvm.heap_alloc(20)

    def test_memory_released_after_run(self):
        sim, machine = make_rig()
        run_bare(sim, machine, JavaProgram(steps=[Step.compute(1.0)]))
        assert machine.memory_used == 0

    def test_memory_released_after_crash(self):
        sim, machine = make_rig()
        run_bare(sim, machine, JavaProgram(steps=[Step.throw("NullPointerException")]))
        assert machine.memory_used == 0

    def test_compute_respects_cpu_speed(self):
        sim = Simulator()
        machine = Machine(sim, "slow", cpu_speed=0.5)
        machine.scratch.mkdir("/scratch/job", parents=True)
        status = run_bare(sim, machine, JavaProgram(steps=[Step.compute(10.0)]))
        assert status.code == 0
        assert sim.now >= 20.0

    def test_program_free_step(self):
        sim, machine = make_rig()
        program = JavaProgram(
            steps=[Step.allocate(20 * MB), Step.free(20 * MB), Step.allocate(25 * MB)]
        )
        status = run_bare(sim, machine, program, heap=32 * MB)
        assert status.code == 0

    def test_error_never_caught_by_program(self):
        sim, machine = make_rig()
        program = JavaProgram(
            steps=[Step.throw("OutOfMemoryError")],
            handles={"OutOfMemoryError"},  # programs cannot catch Errors
        )
        status = run_bare(sim, machine, program)
        assert status.code == 1
