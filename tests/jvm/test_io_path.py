"""Integration tests of the Figure-2 I/O path:

    program --(Chirp/loopback)--> starter proxy --(RPC)--> shadow --> home FS

Exercises the naive vs. scoped library behaviour for each failure mode
the paper names: home FS offline, credential expiry, bad secret, and the
in-contract errors FileNotFound / AccessDenied / DiskFull.
"""

import pytest

from repro.chirp.auth import generate_secret
from repro.chirp.client import CondorIoLibrary
from repro.chirp.proxy import ChirpProxy
from repro.core.result import ResultStatus
from repro.core.scope import ErrorScope
from repro.jvm.machine import Jvm
from repro.jvm.program import JavaProgram, Step
from repro.jvm import throwables as jt
from repro.remoteio.rpc import Credential
from repro.remoteio.server import RemoteIoServer, SyncFsAdapter
from repro.sim.engine import Simulator
from repro.sim.filesystem import LocalFileSystem, NfsClient
from repro.sim.machine import Machine
from repro.sim.network import Network

MB = 2**20


class Rig:
    """A submit machine (shadow side) and an execute machine (starter side)."""

    def __init__(self, mode="scoped", credential_expires=float("inf"), nfs=None):
        self.sim = Simulator()
        self.net = Network(self.sim)
        # Submit side: home file system + remote I/O server.
        self.home_fs = LocalFileSystem("home", capacity=1 * MB, sim=self.sim)
        self.home_fs.mkdir("/home/user", parents=True)
        self.home_fs.write_file("/home/user/input.dat", b"input-bytes")
        backend = SyncFsAdapter(self.home_fs) if nfs is None else nfs
        self.server = RemoteIoServer(
            self.sim, self.net, "submit", 7000, backend
        )
        # Execute side: machine, proxy, library.
        self.machine = Machine(self.sim, "exec1")
        self.machine.scratch.mkdir("/scratch/job", parents=True)
        self.secret = generate_secret("rig")
        credential = Credential("user", expires_at=credential_expires)
        self.proxy = ChirpProxy(
            self.sim,
            self.net,
            "exec1",
            9000,
            self.secret,
            "submit",
            7000,
            credential=credential,
            rpc_timeout=5.0,
        )
        self.io = CondorIoLibrary(
            self.sim, self.net, "exec1", 9000, self.secret, mode=mode,
            request_timeout=8.0,
        )

    def run_program(self, program, heap=32 * MB):
        jvm = Jvm(self.sim, self.machine)
        from repro.condor.job import ProgramImage
        from repro.core.classify import DEFAULT_CLASSIFIER
        from repro.core.result import ResultFile

        sink = []
        image = ProgramImage("Main.class", program=program)
        proc = self.machine.processes.spawn(
            "java",
            jvm.run_wrapped(image, program, self.io, heap, DEFAULT_CLASSIFIER, sink.append),
        )
        # Drive the simulation only until the JVM process finishes: daemon
        # loops (hard-mount retries, accept loops) may generate events forever.
        while proc.status is None and self.sim.step():
            pass
        return proc.status, (ResultFile.parse(sink[0]) if sink else None)

    def run_program_bare(self, program, heap=32 * MB):
        """The fully naive configuration: no wrapper, exit codes only."""
        from repro.condor.job import ProgramImage

        jvm = Jvm(self.sim, self.machine)
        image = ProgramImage("Main.class", program=program)
        proc = self.machine.processes.spawn(
            "java", jvm.run_bare(image, program, self.io, heap)
        )
        while proc.status is None and self.sim.step():
            pass
        return proc.status


class TestHappyPath:
    def test_read_through_both_hops(self):
        rig = Rig()
        program = JavaProgram(steps=[Step.read("/home/user/input.dat"), Step.exit(0)])
        status, result = rig.run_program(program)
        assert result.status is ResultStatus.COMPLETED
        assert rig.proxy.requests_handled == 1
        assert rig.server.requests_served == 1

    def test_write_lands_on_home_fs(self):
        rig = Rig()
        program = JavaProgram(
            steps=[Step.write("/home/user/out.dat", b"result-bytes")]
        )
        _, result = rig.run_program(program)
        assert result.status is ResultStatus.COMPLETED
        assert rig.home_fs.read_file("/home/user/out.dat") == b"result-bytes"

    def test_traffic_flows_over_network(self):
        rig = Rig()
        program = JavaProgram(steps=[Step.read("/home/user/input.dat")])
        rig.run_program(program)
        assert rig.net.traffic_bytes.get(("exec1", "submit"), 0) > 0
        assert rig.net.traffic_bytes.get(("submit", "exec1"), 0) > 0


class TestContractErrors:
    """Errors within the I/O contract reach the program in both modes."""

    @pytest.mark.parametrize("mode", ["naive", "scoped"])
    def test_missing_file_is_program_exception(self, mode):
        rig = Rig(mode=mode)
        program = JavaProgram(steps=[Step.read("/home/user/nope")])
        _, result = rig.run_program(program)
        assert result.status is ResultStatus.EXCEPTION
        assert result.exception_name == "FileNotFoundException"

    @pytest.mark.parametrize("mode", ["naive", "scoped"])
    def test_access_denied(self, mode):
        rig = Rig(mode=mode)
        rig.home_fs.chmod("/home/user/input.dat", readable=False)
        program = JavaProgram(steps=[Step.read("/home/user/input.dat")])
        _, result = rig.run_program(program)
        assert result.status is ResultStatus.EXCEPTION
        assert result.exception_name == "AccessDeniedException"

    @pytest.mark.parametrize("mode", ["naive", "scoped"])
    def test_disk_full_on_write(self, mode):
        rig = Rig(mode=mode)
        program = JavaProgram(steps=[Step.write("/home/user/big", b"x" * (2 * MB))])
        _, result = rig.run_program(program)
        assert result.status is ResultStatus.EXCEPTION
        assert result.exception_name == "DiskFullException"

    def test_program_can_handle_contract_errors(self):
        rig = Rig()
        program = JavaProgram(
            steps=[Step.read("/home/user/nope"), Step.exit(3)],
            handles={"FileNotFoundException"},
        )
        _, result = rig.run_program(program)
        assert result.status is ResultStatus.COMPLETED
        assert result.exit_code == 3


class TestMachineryErrors:
    """Out-of-contract failures: the modes diverge (the paper's crux)."""

    def test_naive_home_fs_offline_becomes_program_result(self):
        """§2.3: 'the job would exit indicating a ConnectionTimedOutException'
        -- and without the wrapper, the JVM collapses it to exit code 1,
        indistinguishable from a program failure."""
        rig = Rig(mode="naive")
        rig.home_fs.set_online(False)
        program = JavaProgram(steps=[Step.read("/home/user/input.dat")])
        status = rig.run_program_bare(program)
        assert status.code == 1  # the Figure-4 collapse

    def test_wrapper_plus_naive_library_misclassifies_invented_types(self):
        """Even with the wrapper, the naive library's *invented* IOException
        subtypes (CredentialExpiredIOException) defeat classification: the
        heuristic calls an unknown ...Exception a program result.  This is
        why P4 matters even once the wrapper exists."""
        rig = Rig(mode="naive", credential_expires=0.0)
        program = JavaProgram(steps=[Step.read("/home/user/input.dat")])
        _, result = rig.run_program(program)
        assert result.status is ResultStatus.EXCEPTION  # wrong!
        assert result.exception_name == "CredentialExpiredIOException"

    def test_scoped_home_fs_offline_is_local_resource(self):
        """§4: the fixed library escapes; the wrapper scopes it correctly."""
        rig = Rig(mode="scoped")
        rig.home_fs.set_online(False)
        program = JavaProgram(steps=[Step.read("/home/user/input.dat")])
        _, result = rig.run_program(program)
        assert result.status is ResultStatus.ENVIRONMENT
        assert result.scope is ErrorScope.LOCAL_RESOURCE
        assert result.error_name == "RemoteIoUnavailableError"

    def test_naive_credential_expiry_exits_one(self):
        rig = Rig(mode="naive", credential_expires=0.0)
        program = JavaProgram(steps=[Step.read("/home/user/input.dat")])
        status = rig.run_program_bare(program)
        assert status.code == 1

    def test_scoped_credential_expiry_is_local_resource(self):
        rig = Rig(mode="scoped", credential_expires=0.0)
        program = JavaProgram(steps=[Step.read("/home/user/input.dat")])
        _, result = rig.run_program(program)
        assert result.status is ResultStatus.ENVIRONMENT
        assert result.scope is ErrorScope.LOCAL_RESOURCE
        assert result.error_name == "CredentialExpiredError"

    def test_scoped_partition_is_local_resource(self):
        rig = Rig(mode="scoped")
        rig.net.partition("exec1", "submit")
        program = JavaProgram(steps=[Step.read("/home/user/input.dat")])
        _, result = rig.run_program(program)
        assert result.status is ResultStatus.ENVIRONMENT
        assert result.scope is ErrorScope.LOCAL_RESOURCE

    def test_bad_secret_rejected(self):
        rig = Rig(mode="scoped")
        rig.io.secret = "wrong"
        program = JavaProgram(steps=[Step.read("/home/user/input.dat")])
        _, result = rig.run_program(program)
        assert result.status is ResultStatus.ENVIRONMENT

    def test_interface_crossings_recorded_for_auditor(self):
        rig = Rig(mode="naive")
        rig.home_fs.set_online(False)
        program = JavaProgram(steps=[Step.read("/home/user/input.dat")])
        rig.run_program(program)
        assert rig.io.interface.generic_passes() == 1

    def test_scoped_interface_records_conversion(self):
        rig = Rig(mode="scoped")
        rig.home_fs.set_online(False)
        program = JavaProgram(steps=[Step.read("/home/user/input.dat")])
        rig.run_program(program)
        assert rig.io.interface.conversions() == 1


class TestNfsHomeDirectory:
    def test_hard_mounted_home_outage_times_out_at_proxy(self):
        """Hard-mounted home FS + outage: the shadow blocks, the proxy's
        RPC times out, the scoped library escapes (indeterminate scope)."""
        sim_rig = Rig(mode="scoped")
        # Rebuild with an NFS-backed home: server exports what home_fs holds.
        rig = Rig.__new__(Rig)
        rig.sim = Simulator()
        rig.net = Network(rig.sim)
        nfs_server_fs = LocalFileSystem("nfs-server", sim=rig.sim)
        nfs_server_fs.mkdir("/home/user", parents=True)
        nfs_server_fs.write_file("/home/user/input.dat", b"x")
        mount = NfsClient(rig.sim, nfs_server_fs, mode="hard", retry_interval=1.0)
        rig.home_fs = nfs_server_fs
        rig.server = RemoteIoServer(rig.sim, rig.net, "submit", 7000, mount)
        rig.machine = Machine(rig.sim, "exec1")
        rig.machine.scratch.mkdir("/scratch/job", parents=True)
        rig.secret = generate_secret("rig")
        rig.proxy = ChirpProxy(
            rig.sim, rig.net, "exec1", 9000, rig.secret, "submit", 7000,
            credential=Credential("user"), rpc_timeout=5.0,
        )
        rig.io = CondorIoLibrary(
            rig.sim, rig.net, "exec1", 9000, rig.secret, mode="scoped",
            request_timeout=30.0,
        )
        nfs_server_fs.set_online(False)  # outage, never healed
        program = JavaProgram(steps=[Step.read("/home/user/input.dat")])
        _, result = rig.run_program(program)
        assert result.status is ResultStatus.ENVIRONMENT
        assert result.scope is ErrorScope.LOCAL_RESOURCE
