"""Parametrized coverage of the wrapper's classification table."""

import pytest

from repro.core.scope import ErrorScope
from repro.jvm.throwables import throwable_by_name
from repro.jvm.wrapper import classify_throwable

PROGRAM_THROWABLES = [
    "NullPointerException",
    "ArrayIndexOutOfBoundsException",
    "ArithmeticException",
    "ClassCastException",
    "IllegalArgumentException",
    "FileNotFoundException",
    "AccessDeniedException",
    "EOFException",
    "DiskFullException",
]

VM_THROWABLES = ["OutOfMemoryError", "StackOverflowError", "VirtualMachineError",
                 "InternalError"]

REMOTE_THROWABLES = ["NoClassDefFoundError", "UnsatisfiedLinkError"]

LOCAL_THROWABLES = ["ConnectionTimedOutException", "RemoteIoUnavailableError",
                    "CredentialExpiredError", "ChirpConnectionLostError"]

JOB_THROWABLES = ["ClassFormatError", "NoSuchMethodError"]


@pytest.mark.parametrize("name", PROGRAM_THROWABLES)
def test_program_scope_throwables(name):
    scope, canonical = classify_throwable(throwable_by_name(name))
    assert scope is ErrorScope.PROGRAM
    assert canonical == name


@pytest.mark.parametrize("name", VM_THROWABLES)
def test_vm_scope_throwables(name):
    scope, _ = classify_throwable(throwable_by_name(name))
    assert scope is ErrorScope.VIRTUAL_MACHINE


@pytest.mark.parametrize("name", REMOTE_THROWABLES)
def test_remote_scope_throwables(name):
    scope, _ = classify_throwable(throwable_by_name(name))
    assert scope is ErrorScope.REMOTE_RESOURCE


@pytest.mark.parametrize("name", LOCAL_THROWABLES)
def test_local_scope_throwables(name):
    scope, _ = classify_throwable(throwable_by_name(name))
    assert scope is ErrorScope.LOCAL_RESOURCE


@pytest.mark.parametrize("name", JOB_THROWABLES)
def test_job_scope_throwables(name):
    scope, _ = classify_throwable(throwable_by_name(name))
    assert scope is ErrorScope.JOB


def test_scope_hint_beats_table():
    """An escaping JError's planted scope_hint wins over the name table --
    'cooperating by knowing the scope, rather than the detail' (§7)."""
    exc = throwable_by_name("ChirpConnectionLostError")
    assert exc.scope_hint is ErrorScope.LOCAL_RESOURCE
    scope, name = classify_throwable(exc)
    assert scope is ErrorScope.LOCAL_RESOURCE
    assert name == "ChirpConnectionLostError"


def test_user_defined_exception_defaults_to_program():
    scope, _ = classify_throwable(throwable_by_name("MyDomainException"))
    assert scope is ErrorScope.PROGRAM
