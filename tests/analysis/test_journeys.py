"""Tests for trace analytics."""

import pytest

from repro.analysis import analyze_trace, journeys, observed_scope_map
from repro.core.errors import explicit
from repro.core.propagation import Action, ManagementChain, ScopeManager
from repro.core.scope import ErrorScope


def make_chain(mask_at=None):
    policies = {}
    if mask_at:
        policies[mask_at] = lambda mgr, err: Action.MASK
    spec = [
        ("wrapper", {ErrorScope.PROGRAM, ErrorScope.PROCESS}),
        ("starter", {ErrorScope.VIRTUAL_MACHINE}),
        ("shadow", {ErrorScope.REMOTE_RESOURCE}),
        ("schedd", {ErrorScope.LOCAL_RESOURCE, ErrorScope.JOB}),
    ]
    return ManagementChain(
        [ScopeManager(name, scopes, policies.get(name)) for name, scopes in spec]
    )


class TestJourneys:
    def test_single_journey_reconstruction(self):
        chain = make_chain()
        err = explicit("OutOfMemoryError", ErrorScope.VIRTUAL_MACHINE)
        chain.propagate(err, "wrapper", time=3.0)
        [journey] = journeys(chain.trace)
        assert journey.name == "OutOfMemoryError"
        assert journey.discovered_by == "wrapper"
        assert journey.discovered_at == 3.0
        assert journey.handler == "starter"
        assert journey.hops == 1
        assert journey.correctly_delivered

    def test_multiple_errors_grouped_separately(self):
        chain = make_chain()
        for i in range(3):
            chain.propagate(explicit(f"E{i}", ErrorScope.JOB), "wrapper", time=float(i))
        assert len(journeys(chain.trace)) == 3

    def test_rescoped_error_stays_one_journey(self):
        """rescoped() preserves error_id, so the journey is one story."""
        chain = make_chain()
        low = explicit("ConnectionLost", ErrorScope.PROCESS)
        chain.propagate(low, "wrapper", time=1.0)
        high = low.rescoped(ErrorScope.REMOTE_RESOURCE)
        chain.propagate(high, "shadow", time=2.0)
        assert len(journeys(chain.trace)) == 1

    def test_mishandled_journey(self):
        chain = make_chain()
        err = explicit("X", ErrorScope.VIRTUAL_MACHINE)
        chain.misdeliver(err, consumed_by="user", time=1.0)
        [journey] = journeys(chain.trace)
        assert not journey.correctly_delivered
        assert journey.handler == "user"

    def test_unmanaged_journey(self):
        chain = make_chain()
        err = explicit("MatchmakerGone", ErrorScope.POOL)
        chain.propagate(err, "wrapper")
        [journey] = journeys(chain.trace)
        assert journey.handler is None
        assert not journey.correctly_delivered


class TestStats:
    def test_empty_trace(self):
        chain = make_chain()
        stats = analyze_trace(chain.trace)
        assert stats.total == 0
        assert stats.mean_hops == 0.0

    def test_mixed_trace_statistics(self):
        chain = make_chain(mask_at="starter")
        chain.propagate(explicit("A", ErrorScope.VIRTUAL_MACHINE), "wrapper")  # masked
        chain.propagate(explicit("B", ErrorScope.JOB), "wrapper")  # reported, 3 hops
        chain.propagate(explicit("C", ErrorScope.POOL), "wrapper")  # unmanaged
        chain.misdeliver(explicit("D", ErrorScope.JOB), "user")  # mishandled
        stats = analyze_trace(chain.trace)
        assert stats.total == 4
        assert stats.correctly_delivered == 2
        assert stats.unmanaged == 1
        assert stats.mishandled == 1
        assert stats.by_scope[ErrorScope.JOB] == 2
        assert stats.by_handler["starter"] == 1
        assert stats.by_handler["schedd"] == 1
        assert stats.max_hops == 4  # C escalated through all four managers

    def test_stats_table_renders(self):
        chain = make_chain()
        chain.propagate(explicit("A", ErrorScope.JOB), "wrapper")
        text = analyze_trace(chain.trace).table().render()
        assert "errors traced" in text and "handled by schedd" in text


class TestObservedScopeMap:
    def test_map_matches_figure_3(self):
        chain = make_chain()
        chain.propagate(explicit("A", ErrorScope.VIRTUAL_MACHINE), "wrapper")
        chain.propagate(explicit("B", ErrorScope.JOB), "wrapper")
        text = observed_scope_map(chain.trace).render()
        assert "virtual-machine" in text and "starter" in text
        assert "job" in text and "schedd" in text

    def test_pool_trace_feeds_analysis(self):
        """End to end: a real pool run's trace analyzed."""
        from repro.condor import Job, Pool, PoolConfig, ProgramImage, Universe
        from repro.faults import FaultInjector, MisconfiguredJvm
        from repro.jvm.program import JavaProgram, Step

        pool = Pool(PoolConfig(n_machines=3))
        FaultInjector(pool).schedule(MisconfiguredJvm("exec000"))
        job = Job("1.0", owner="t", universe=Universe.JAVA,
                  image=ProgramImage("x.class",
                                     program=JavaProgram(steps=[Step.compute(3.0)])))
        pool.submit(job)
        pool.run_until_done(max_time=100_000)
        stats = analyze_trace(pool.trace)
        assert stats.total >= 1
        assert stats.mishandled == 0
        assert stats.correctly_delivered == stats.total
