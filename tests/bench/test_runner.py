"""Tests for the benchmark runner (repro.bench.runner)."""

import json

from repro.bench.compare import strip_wall
from repro.bench.runner import (
    BENCH_SCHEMA,
    BenchmarkProxy,
    bench_name,
    collect_cases,
    discover,
    run_bench_file,
    run_suite,
)

#: A miniature benchmark module exercising every runner feature: the
#: benchmark fixture, pedantic, parametrize, and a plain test function.
TINY_BENCH = '''
import pytest

from repro.condor.pool import Pool, PoolConfig
from repro.harness.workloads import WorkloadSpec, make_workload
from repro.sim.rng import RngRegistry


def _run(seed):
    pool = Pool(PoolConfig(n_machines=2, seed=seed))
    jobs = make_workload(
        WorkloadSpec(n_jobs=2, io_fraction=0.0, exception_fraction=0.0,
                     exit_code_fraction=0.0),
        RngRegistry(seed).stream("tiny"),
    )
    for job in jobs:
        pool.submit(job)
    pool.run_until_done(max_time=10_000)
    return pool


def test_fixture_call(benchmark):
    benchmark(_run, 0)


def test_pedantic(benchmark):
    benchmark.pedantic(_run, args=(0,), rounds=2, iterations=1)


@pytest.mark.parametrize("seed", [0, 1])
def test_parametrized(benchmark, seed):
    benchmark(_run, seed)


def test_plain():
    assert _run(0).sim.now > 0
'''


def _write_tiny(tmp_path, name="bench_tiny.py", body=TINY_BENCH):
    path = tmp_path / name
    path.write_text(body)
    return path


class TestDiscovery:
    def test_discovers_the_committed_suite(self):
        paths = discover("benchmarks")
        names = [bench_name(p) for p in paths]
        assert len(names) == 21
        assert names == sorted(names)
        assert "sim_engine" in names and "fig3_scopes" in names
        assert "scale_pool" in names
        assert "service_load" in names
        assert "churn_federation" in names
        assert "fuzz_campaign" in names

    def test_collect_expands_parametrize(self, tmp_path):
        cases = collect_cases(_write_tiny(tmp_path))
        ids = [c.case_id for c in cases]
        assert "test_fixture_call" in ids
        assert "test_parametrized[0]" in ids and "test_parametrized[1]" in ids
        assert "test_plain" in ids

    def test_wants_proxy_detection(self, tmp_path):
        cases = {c.case_id: c for c in collect_cases(_write_tiny(tmp_path))}
        assert cases["test_fixture_call"].wants_proxy
        assert not cases["test_plain"].wants_proxy


class TestRunBenchFile:
    def test_record_shape(self, tmp_path):
        record = run_bench_file(_write_tiny(tmp_path), rounds_override=1)
        assert record["schema"] == BENCH_SCHEMA
        assert record["bench"] == "tiny"
        case = record["cases"]["test_fixture_call"]
        assert case["ok"] and case["error"] is None
        assert case["deterministic"] is True
        assert case["sim"]["events"] > 0
        assert case["critical_path"]["critical_job"] is not None
        assert case["folded"]
        assert case["wall_seconds"]["min"] > 0

    def test_plain_case_still_observed(self, tmp_path):
        record = run_bench_file(_write_tiny(tmp_path), rounds_override=1)
        case = record["cases"]["test_plain"]
        assert case["ok"] and case["sim"]["events"] > 0

    def test_same_seed_records_identical_after_wall_strip(self, tmp_path):
        path = _write_tiny(tmp_path)
        a = run_bench_file(path, rounds_override=1)
        b = run_bench_file(path, rounds_override=2)
        assert strip_wall(a) != strip_wall(b)  # rounds_override differs...
        a.pop("rounds_override")
        b.pop("rounds_override")
        for case in list(a["cases"].values()) + list(b["cases"].values()):
            case.pop("rounds")
        # ...but every sim-side field is round-count independent.
        assert strip_wall(a) == strip_wall(b)

    def test_failing_case_is_data_not_crash(self, tmp_path):
        path = _write_tiny(
            tmp_path,
            name="bench_bad.py",
            body="def test_boom():\n    assert False, 'expected'\n",
        )
        record = run_bench_file(path)
        case = record["cases"]["test_boom"]
        assert not case["ok"]
        assert "AssertionError" in case["error"]


class TestRunSuite:
    def test_writes_canonical_json_per_module(self, tmp_path):
        _write_tiny(tmp_path)
        out = tmp_path / "out"
        written = run_suite(
            bench_dir=tmp_path, out_dir=out, rounds_override=1, echo=lambda s: None
        )
        assert [p.name for p in written] == ["BENCH_tiny.json"]
        record = json.loads(written[0].read_text())
        assert record["schema"] == BENCH_SCHEMA

    def test_only_filters_by_substring(self, tmp_path):
        _write_tiny(tmp_path)
        _write_tiny(tmp_path, name="bench_other.py",
                    body="def test_ok():\n    pass\n")
        out = tmp_path / "out"
        written = run_suite(bench_dir=tmp_path, out_dir=out, only=["tin"],
                            rounds_override=1, echo=lambda s: None)
        assert [p.name for p in written] == ["BENCH_tiny.json"]

    def test_suite_output_byte_identical_after_wall_strip(self, tmp_path):
        _write_tiny(tmp_path)
        texts = []
        for tag in ("a", "b"):
            out = tmp_path / f"out_{tag}"
            run_suite(bench_dir=tmp_path, out_dir=out, rounds_override=1,
                      echo=lambda s: None)
            record = json.loads((out / "BENCH_tiny.json").read_text())
            texts.append(
                json.dumps(strip_wall(record), sort_keys=True)
            )
        assert texts[0] == texts[1]


class TestBenchmarkProxy:
    def test_default_rounds(self):
        proxy = BenchmarkProxy()
        calls = []
        proxy(lambda: calls.append(1))
        assert proxy.rounds_run == 3 and len(calls) == 3

    def test_rounds_override_wins_over_pedantic(self):
        proxy = BenchmarkProxy(rounds_override=1)
        calls = []
        proxy.pedantic(lambda: calls.append(1), rounds=5)
        assert proxy.rounds_run == 1 and len(calls) == 1

    def test_result_is_returned(self):
        proxy = BenchmarkProxy(rounds_override=1)
        assert proxy(lambda: 42) == 42
