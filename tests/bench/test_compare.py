"""Tests for bench comparison and the bench CLI (repro.bench.compare)."""

import copy
import json

import pytest

from repro.bench.__main__ import main
from repro.bench.compare import compare_paths, compare_records, strip_wall

RECORD = {
    "schema": "repro-bench/1",
    "bench": "demo",
    "rounds_override": None,
    "cases": {
        "test_a": {
            "ok": True,
            "error": None,
            "rounds": 1,
            "iterations": 1,
            "deterministic": True,
            "wall_seconds": {"min": 0.2, "max": 0.3, "mean": 0.25,
                             "per_round": [0.2, 0.3]},
            "wall": {"sim.process_step": {"calls": 10, "total_seconds": 0.1,
                                          "mean_seconds": 0.01,
                                          "min_seconds": 0.001,
                                          "max_seconds": 0.02}},
            "sim": {"events": 100, "sim_time": 42.0, "top": []},
            "critical_path": {"critical_job": "job:1", "makespan": 42.0},
            "folded": ["job:1 42000000"],
            "histograms": {},
        }
    },
}


def _record(**case_overrides):
    record = copy.deepcopy(RECORD)
    record["cases"]["test_a"].update(case_overrides)
    return record


class TestStripWall:
    def test_removes_wall_keys_at_any_depth(self):
        stripped = strip_wall(RECORD)
        case = stripped["cases"]["test_a"]
        assert "wall" not in case and "wall_seconds" not in case
        assert case["sim"]["events"] == 100

    def test_original_is_untouched(self):
        strip_wall(RECORD)
        assert "wall" in RECORD["cases"]["test_a"]


class TestCompareRecords:
    def test_identical_records_pass(self):
        assert compare_records(RECORD, copy.deepcopy(RECORD)) == []

    def test_wall_noise_alone_passes(self):
        noisy = _record(wall_seconds={"min": 0.25, "max": 0.4, "mean": 0.3,
                                      "per_round": [0.25, 0.4]})
        assert compare_records(RECORD, noisy) == []

    def test_sim_change_is_a_hard_failure(self):
        changed = _record(sim={"events": 101, "sim_time": 42.0, "top": []})
        problems = compare_records(RECORD, changed)
        assert problems and "sim-side mismatch" in problems[0]
        assert "events" in problems[0]

    def test_sim_change_fails_even_with_sim_only(self):
        changed = _record(sim={"events": 100, "sim_time": 43.0, "top": []})
        assert compare_records(RECORD, changed, check_wall=False)

    def test_wall_regression_past_threshold_fails(self):
        slow = _record(wall_seconds={"min": 0.5, "max": 0.6, "mean": 0.55,
                                     "per_round": [0.5, 0.6]})
        problems = compare_records(RECORD, slow, wall_threshold=1.0)
        assert problems and "wall regression" in problems[0]

    def test_wall_regression_below_floor_is_ignored(self):
        fast_base = _record(wall_seconds={"min": 0.001, "max": 0.001,
                                          "mean": 0.001, "per_round": [0.001]})
        fast_slow = _record(wall_seconds={"min": 0.004, "max": 0.004,
                                          "mean": 0.004, "per_round": [0.004]})
        assert compare_records(fast_base, fast_slow, wall_threshold=1.0,
                               min_wall_seconds=0.05) == []

    def test_wall_check_disabled(self):
        slow = _record(wall_seconds={"min": 5.0, "max": 5.0, "mean": 5.0,
                                     "per_round": [5.0]})
        assert compare_records(RECORD, slow, check_wall=False) == []


class TestComparePaths:
    def _write(self, path, record):
        path.write_text(json.dumps(record))

    def test_directories_pairwise(self, tmp_path):
        old, new = tmp_path / "old", tmp_path / "new"
        old.mkdir(), new.mkdir()
        self._write(old / "BENCH_demo.json", RECORD)
        self._write(new / "BENCH_demo.json", RECORD)
        problems, compared = compare_paths(old, new)
        assert problems == [] and compared == 1

    def test_missing_benchmark_is_a_problem(self, tmp_path):
        old, new = tmp_path / "old", tmp_path / "new"
        old.mkdir(), new.mkdir()
        self._write(old / "BENCH_demo.json", RECORD)
        problems, compared = compare_paths(old, new)
        assert compared == 0
        assert problems == ["BENCH_demo.json: present in old run only"]

    def test_single_files(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, RECORD)
        self._write(b, _record(sim={"events": 1, "sim_time": 1.0, "top": []}))
        b.rename(tmp_path / "a2.json")  # names differ -> treated as files
        problems, _ = compare_paths(a, a)
        assert problems == []


class TestCli:
    def _write_dirs(self, tmp_path, new_record):
        old, new = tmp_path / "old", tmp_path / "new"
        old.mkdir(), new.mkdir()
        (old / "BENCH_demo.json").write_text(json.dumps(RECORD))
        (new / "BENCH_demo.json").write_text(json.dumps(new_record))
        return old, new

    def test_compare_identical_exits_zero(self, tmp_path, capsys):
        old, new = self._write_dirs(tmp_path, RECORD)
        assert main(["compare", str(old), str(new)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_compare_injected_sim_regression_exits_nonzero(self, tmp_path, capsys):
        regressed = _record(sim={"events": 100, "sim_time": 99.0, "top": []})
        old, new = self._write_dirs(tmp_path, regressed)
        assert main(["compare", str(old), str(new)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "sim-side mismatch" in out

    def test_compare_wall_threshold_flag(self, tmp_path):
        slow = _record(wall_seconds={"min": 0.5, "max": 0.5, "mean": 0.5,
                                     "per_round": [0.5]})
        old, new = self._write_dirs(tmp_path, slow)
        assert main(["compare", str(old), str(new), "--wall-threshold", "0.5"]) == 1
        assert main(["compare", str(old), str(new), "--wall-threshold", "4.0"]) == 0
        assert main(["compare", str(old), str(new), "--sim-only"]) == 0

    def test_list_names_the_suite(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "sim_engine" in out and "fig3_scopes" in out

    def test_run_unmatched_filter_exits_nonzero(self, tmp_path, capsys):
        assert main(["run", "--bench-dir", str(tmp_path),
                     "--out", str(tmp_path / "out")]) == 1

    def test_rounds_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["--rounds", "0", "--list"])


class TestMissingBaseline:
    """A missing comparison side is NOT a regression: distinct exception,
    distinct message, distinct exit code (2, so CI can tell "no baseline
    yet" from "benchmarks regressed")."""

    def _candidate_dir(self, tmp_path):
        new = tmp_path / "new"
        new.mkdir()
        (new / "BENCH_demo.json").write_text(json.dumps(RECORD))
        return new

    def test_nonexistent_baseline_raises(self, tmp_path):
        from repro.bench.compare import MissingBaselineError

        with pytest.raises(MissingBaselineError, match="baseline"):
            compare_paths(tmp_path / "ghost", self._candidate_dir(tmp_path))

    def test_empty_existing_dir_still_compares(self, tmp_path):
        # An existing-but-empty dir is not "missing": its absent
        # benchmarks surface as ordinary problems, same as the seed.
        empty = tmp_path / "empty"
        empty.mkdir()
        problems, compared = compare_paths(empty, self._candidate_dir(tmp_path))
        assert compared == 0
        assert problems == ["BENCH_demo.json: present in new run only"]

    def test_missing_candidate_names_that_side(self, tmp_path):
        from repro.bench.compare import MissingBaselineError

        baseline = self._candidate_dir(tmp_path)
        with pytest.raises(MissingBaselineError, match="candidate"):
            compare_paths(baseline, tmp_path / "ghost")

    def test_cli_exit_code_distinct_from_regression(self, tmp_path, capsys):
        new = self._candidate_dir(tmp_path)
        code = main(["compare", str(tmp_path / "ghost"), str(new)])
        captured = capsys.readouterr()
        assert code == 2  # not 1: nothing regressed, there is nothing to diff
        assert "MISSING BASELINE" in captured.err
        assert "python -m repro.bench" in captured.err
        assert "REGRESSION" not in captured.out
