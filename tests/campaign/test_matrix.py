"""The cell matrix: enumeration, targeting, windows, and spec round-trips."""

import pytest

from repro.campaign.spec import (
    CATALOGUE,
    CampaignConfig,
    CellSpec,
    FaultSpec,
    build_fault,
    enumerate_cells,
)


class TestEnumeration:
    def test_singles_cover_kind_x_window_minus_undisarmable(self):
        config = CampaignConfig()
        cells = enumerate_cells(config)
        # Federation-only kinds are excluded from a solitary-pool matrix.
        swept = [info for info in CATALOGUE if not info.needs_federation]
        disarmable = sum(1 for info in swept if info.disarmable)
        fixed = len(swept) - disarmable
        expected = disarmable * len(config.windows) + fixed
        assert len(cells) == expected
        assert all(len(cell.injections) == 1 for cell in cells)

    def test_undisarmable_kinds_get_no_bounded_window(self):
        for cell in enumerate_cells(CampaignConfig()):
            (spec,) = cell.injections
            info = next(i for i in CATALOGUE if i.kind == spec.kind)
            if not info.disarmable:
                assert spec.until is None

    def test_cell_ids_are_unique_and_prefixed(self):
        config = CampaignConfig(mode="scoped", seed=7)
        cells = enumerate_cells(config)
        ids = [cell.cell_id for cell in cells]
        assert len(set(ids)) == len(ids)
        assert all(cell_id.startswith("scoped/s7/") for cell_id in ids)

    def test_order2_adds_distinct_kind_pairs(self):
        config = CampaignConfig(max_order=2)
        singles = [c for c in enumerate_cells(config) if len(c.injections) == 1]
        combos = [c for c in enumerate_cells(config) if len(c.injections) == 2]
        # Combos draw from the solitary-pool kinds only (federation-only
        # kinds never reach a default matrix).
        n_kinds = sum(1 for info in CATALOGUE if not info.needs_federation)
        assert len(combos) == n_kinds * (n_kinds - 1) // 2
        assert len(singles) + len(combos) == len(enumerate_cells(config))
        for cell in combos:
            kinds = [spec.kind for spec in cell.injections]
            assert len(set(kinds)) == 2

    def test_more_sites_multiply_site_fault_cells(self):
        narrow = enumerate_cells(CampaignConfig(sites=("exec000",)))
        wide = enumerate_cells(CampaignConfig(sites=("exec000", "exec001")))
        assert len(wide) > len(narrow)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            enumerate_cells(CampaignConfig(kinds=("NoSuchFault",)))


class TestSpecs:
    def test_fault_spec_round_trips_through_dict(self):
        for spec in (
            FaultSpec("MisconfiguredJvm", site="exec000"),
            FaultSpec("CorruptProgramImage", job_index=2, at=5.0, until=10.0),
            FaultSpec("HomeFilesystemOffline", at=90.0, until=None),
        ):
            assert FaultSpec.from_dict(spec.as_dict()) == spec

    def test_cell_specs_are_hashable_and_picklable(self):
        import pickle

        cells = enumerate_cells(CampaignConfig(max_order=2))
        assert len({hash(cell) for cell in cells}) > 1
        assert pickle.loads(pickle.dumps(cells)) == cells

    def test_with_injections_relabels(self):
        cell = CellSpec(
            "scoped/s0/x", "scoped", 0,
            (FaultSpec("MisconfiguredJvm", site="exec000"),
             FaultSpec("HomeDiskFull")),
        )
        shrunk = cell.with_injections(cell.injections[:1])
        assert shrunk.injections == cell.injections[:1]
        assert "MisconfiguredJvm" in shrunk.cell_id
        assert "HomeDiskFull" not in shrunk.cell_id

    def test_build_fault_covers_the_whole_catalogue(self):
        from repro.condor import Pool, PoolConfig
        from repro.harness.workloads import WorkloadSpec, make_workload
        from repro.sim.rng import RngRegistry

        pool = Pool(PoolConfig(n_machines=2, seed=0))
        jobs = make_workload(
            WorkloadSpec(n_jobs=2, io_fraction=0.0, exception_fraction=0.0,
                         exit_code_fraction=0.0),
            RngRegistry(0).stream("t"), home_fs=pool.home_fs,
        )
        for info in CATALOGUE:
            spec = FaultSpec(
                info.kind,
                site="exec000" if info.target == "site" else None,
                job_index=0 if info.target == "job" else None,
            )
            fault = build_fault(spec, pool, jobs)
            assert type(fault).__name__ == info.kind

    def test_build_fault_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            build_fault(FaultSpec("NoSuchFault"), None, [])
