"""Slow fuzz campaigns: the full acceptance run and a long soak.

Deselected by default (``-m slow`` runs them); the CI slow-campaign job
executes these alongside the exhaustive full-matrix sweeps.
"""

import pytest

from repro.campaign.fuzz import FuzzConfig, run_fuzz
from repro.campaign.shrink import replay
from repro.campaign.spec import CampaignConfig
from repro.obs.export import dump_json

#: The exhaustive classic-mode order-2 sweep (PR 3 pinned it) runs 103
#: cells; the acceptance bar is >= 10x fewer cells to the same
#: principle set.
EXHAUSTIVE_ORDER2_CELLS = 103

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def acceptance_report():
    """The acceptance command: classic mode, seed 7, 200-cell budget."""
    return run_fuzz(FuzzConfig(
        campaign=CampaignConfig(mode="classic", seed=7), budget_cells=200,
    ))


class TestAcceptance:
    def test_all_four_principles_within_a_tenth_of_exhaustive(
        self, acceptance_report
    ):
        at = acceptance_report["violations"]["all_principles_at"]
        assert at is not None
        assert at * 10 <= EXHAUSTIVE_ORDER2_CELLS
        assert acceptance_report["violations"]["principles"] == [1, 2, 3, 4]

    def test_surfaces_an_order_3_minimal_violation(self, acceptance_report):
        deep = [rep for rep in acceptance_report["reproducers"]
                if rep["order"] >= 3]
        assert deep, "no order-3 1-minimal reproducer surfaced"

    def test_order_3_reproducers_replay(self, acceptance_report):
        for rep in acceptance_report["reproducers"]:
            if rep["order"] >= 3:
                assert replay(rep["spec"])["reproduced"], rep["signature"]

    def test_parallel_acceptance_run_is_byte_identical(
        self, acceptance_report, tmp_path
    ):
        parallel = run_fuzz(FuzzConfig(
            campaign=CampaignConfig(mode="classic", seed=7), budget_cells=200,
        ), jobs=4)
        a, b = tmp_path / "serial.json", tmp_path / "jobs4.json"
        dump_json(a, acceptance_report)
        dump_json(b, parallel)
        assert a.read_bytes() == b.read_bytes()


class TestSoak:
    def test_500_cell_campaign_stays_coherent(self):
        report = run_fuzz(FuzzConfig(
            campaign=CampaignConfig(mode="classic", seed=3),
            budget_cells=500,
        ), shrink=False)
        totals = report["totals"]
        assert totals["cells"] == 500
        assert totals["violations"] > 0
        assert report["violations"]["principles"] == [1, 2, 3, 4]
        # coverage bookkeeping survives a long run
        assert totals["corpus"] == sum(1 for r in report["cells"] if r["novel"])
        assert totals["errors"] == sum(
            1 for r in report["cells"] if r["error"] is not None
        )
