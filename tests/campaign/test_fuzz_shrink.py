"""Signature-preserving shrinking of fuzzer finds.

The interesting fuzzer discovery is a violation that only exists at
order >= 3: classic ddmin ("any violation will do") collapses such a
cell onto whichever single fault violates something first, so the
fuzzer shrinks with the predicate "this exact normalized violation
signature survives".  These tests pin that distinction on the order-3
window-interplay find the seed-7 campaign surfaces:
HomeFilesystemOffline bounded to [30, 150] only trips the P3
local-resource mishandling when NetworkPartition delays the job's input
read into the offline window -- remove any one fault and the signature
disappears.
"""

import pytest

from repro.campaign.engine import run_cell_record
from repro.campaign.shrink import minimize_cell, replay
from repro.campaign.spec import CampaignConfig, CellSpec, FaultSpec
from repro.obs.signature import violation_features

P3_HFO = (
    "viol:P3:user:HomeFilesystemOffline[local-resource/explicit]: "
    "<job>@<site> consumed by 'user', which does not manage "
    "local-resource scope"
)

CONFIG = CampaignConfig(mode="classic", seed=7)

ORDER3 = (
    FaultSpec(kind="HomeFilesystemOffline", at=30.0, until=150.0),
    FaultSpec(kind="MissingInputFile", job_index=0),
    FaultSpec(kind="NetworkPartition", site="exec000"),
)


def _cell(injections):
    return CellSpec("classic/s7/x", "classic", 7, tuple(injections))


def _keeps(record):
    return P3_HFO in violation_features(record["violations"])


@pytest.fixture(scope="module")
def order3_spec():
    return minimize_cell(_cell(ORDER3), CONFIG, keep=_keeps)


class TestOrder3Minimal:
    def test_the_triple_trips_the_signature(self):
        record = run_cell_record(_cell(ORDER3), CONFIG)
        assert P3_HFO in violation_features(record["violations"])

    def test_every_pair_loses_the_signature(self):
        """The ground truth that makes the triple order-3-minimal."""
        for drop in range(3):
            pair = tuple(s for i, s in enumerate(ORDER3) if i != drop)
            record = run_cell_record(_cell(pair), CONFIG)
            assert P3_HFO not in violation_features(record["violations"]), (
                f"dropping injection {drop} should lose the signature"
            )

    def test_signature_preserving_shrink_keeps_order_3(self, order3_spec):
        assert len(order3_spec["injections"]) == 3
        kinds = {inj["kind"] for inj in order3_spec["injections"]}
        assert kinds == {"HomeFilesystemOffline", "MissingInputFile",
                         "NetworkPartition"}

    def test_replay_retriggers_the_same_signature(self, order3_spec):
        outcome = replay(order3_spec)
        assert outcome["reproduced"]
        assert P3_HFO in violation_features(outcome["violations"])

    def test_plain_ddmin_would_collapse_to_order_1(self):
        """Contrast: without the keep predicate, ddmin stops at the
        first single fault that violates *anything* -- which is why the
        fuzzer must shrink per signature."""
        spec = minimize_cell(_cell(ORDER3), CONFIG)
        assert len(spec["injections"]) == 1


class TestOrder2Variant:
    def test_open_window_pair_is_order_2_minimal(self):
        """With the offline window left open the same signature needs
        only the pair -- the window is what buys the third order."""
        pair = (
            FaultSpec(kind="HomeFilesystemOffline"),
            FaultSpec(kind="MissingInputFile", job_index=0),
        )
        record = run_cell_record(_cell(pair), CONFIG)
        assert P3_HFO in violation_features(record["violations"])
        spec = minimize_cell(_cell(pair), CONFIG, keep=_keeps)
        assert len(spec["injections"]) == 2
