"""Campaign summaries quote the GridConsole makespan footer.

Satellite of the results-store PR: campaign runs now collect per-cell
job makespans through the same submit->result pairing the live console
uses, and both summary renderers surface the p50/p95/p99 triple via
``MetricsRegistry.histogram_percentile``.  The edge that matters: an
empty histogram (no job finished anywhere) must yield NO footer, not a
crash or a degenerate one.
"""

from repro.campaign.engine import run_campaign
from repro.campaign.report import makespan_footer, render_summary
from repro.campaign.spec import CampaignConfig
from repro.obs.metrics import MetricsRegistry


class TestMakespanFooter:
    def test_empty_histogram_yields_no_footer(self):
        assert makespan_footer([]) is None
        assert makespan_footer([{"job_makespans": []}]) is None
        assert makespan_footer([{}]) is None  # errored cells lack the key

    def test_registry_percentile_is_none_on_absent_series(self):
        registry = MetricsRegistry()
        assert registry.histogram_percentile("job_makespan_seconds", 50) is None

    def test_footer_pools_cells_and_matches_registry(self):
        cells = [
            {"job_makespans": [1.0, 2.0]},
            {"job_makespans": [3.0, 4.0]},
        ]
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.histogram("job_makespan_seconds", value)
        p50 = registry.histogram_percentile("job_makespan_seconds", 50)
        p95 = registry.histogram_percentile("job_makespan_seconds", 95)
        p99 = registry.histogram_percentile("job_makespan_seconds", 99)
        assert makespan_footer(cells) == (
            f"makespan p50={p50:.1f}s p95={p95:.1f}s p99={p99:.1f}s"
        )

    def test_campaign_records_carry_makespans_and_footer_renders(self):
        config = CampaignConfig(mode="scoped", seed=1, kinds=("MachineCrash",))
        report = run_campaign(config, shrink=False)
        cell = report["cells"][0]
        assert cell["job_makespans"] == sorted(cell["job_makespans"])
        assert cell["makespan_percentiles"]["p50"] in cell["job_makespans"]
        rendered = render_summary(report)
        assert "makespan p50=" in rendered
