"""The acceptance surface of the fault-campaign engine.

The headline claims, straight from the issue: a full single-fault
campaign over the catalogue reports **zero** P1-P4 violations in
``scoped`` mode; the same campaign in ``classic`` (naive) mode detects
the Figure 4 implicit-error collapse as at least one P1 violation; and
every reported violation ships with a shrunken reproducer spec that
actually reproduces it on replay.
"""

import pytest

from repro.campaign.engine import run_campaign, run_cell_record
from repro.campaign.shrink import replay
from repro.campaign.spec import CATALOGUE, CampaignConfig, enumerate_cells
from repro.condor.daemons.config import CondorConfig


def _campaign(mode: str, **overrides) -> dict:
    return run_campaign(CampaignConfig(mode=mode, **overrides), jobs=1)


class TestScopedCampaignIsClean:
    def test_full_single_fault_catalogue_zero_violations(self):
        report = _campaign("scoped")
        assert report["totals"]["cells"] >= len(CATALOGUE)
        assert report["totals"]["violations"] == 0
        assert report["totals"]["by_principle"] == {
            "P1": 0, "P2": 0, "P3": 0, "P4": 0,
        }
        for record in report["cells"]:
            assert record["violations"] == []
            assert record["live_matches_posthoc"]
            assert record["reproducer"] is None

    def test_every_catalogue_kind_is_swept(self):
        report = _campaign("scoped")
        swept = {
            injection["kind"]
            for record in report["cells"]
            for injection in record["injections"]
        }
        # Federation-only kinds need a grid; a solitary-pool campaign
        # sweeps everything else.
        assert swept == {
            info.kind for info in CATALOGUE if not info.needs_federation
        }
        assert "FlockLinkDown" not in swept


class TestClassicCampaignDetectsTheCollapse:
    @pytest.fixture(scope="class")
    def report(self):
        return _campaign("classic")

    def test_detects_p1_exit_code_masking(self, report):
        """Figure 4: the bare JVM collapses environmental errors into exit
        code 1, presented to the user as a program result -- P1."""
        assert report["totals"]["by_principle"]["P1"] >= 1

    def test_live_sanitizer_agrees_everywhere(self, report):
        assert report["totals"]["live_mismatches"] == 0

    def test_every_violating_cell_has_a_reproducer_that_reproduces(self, report):
        violating = [r for r in report["cells"] if r["violations"]]
        assert violating, "classic campaign found no violating cells"
        for record in violating:
            spec = record["reproducer"]
            assert spec is not None
            assert spec["expect"], f"{record['cell']}: empty expectation"
            outcome = replay(spec)
            assert outcome["reproduced"], f"{record['cell']}: replay diverged"

    def test_reproducers_are_minimal_single_fault(self, report):
        """Single-fault cells shrink to themselves: exactly one injection."""
        for record in report["cells"]:
            if record["reproducer"] is not None:
                assert len(record["reproducer"]["injections"]) == 1


class TestClassicModeAlias:
    def test_condor_config_normalizes_classic_to_naive(self):
        assert CondorConfig(error_mode="classic").error_mode == "naive"

    def test_unknown_mode_still_rejected(self):
        with pytest.raises(ValueError):
            CondorConfig(error_mode="sloppy")

    def test_classic_cells_equal_naive_cells(self):
        config_c = CampaignConfig(mode="classic", kinds=("MisconfiguredJvm",),
                                  windows=((0.0, None),))
        config_n = CampaignConfig(mode="naive", kinds=("MisconfiguredJvm",),
                                  windows=((0.0, None),))
        (cell_c,) = enumerate_cells(config_c)
        (cell_n,) = enumerate_cells(config_n)
        record_c = run_cell_record(cell_c, config_c)
        record_n = run_cell_record(cell_n, config_n)
        assert record_c["violations"] == record_n["violations"]
        assert record_c["jobs"] == record_n["jobs"]


@pytest.mark.slow
class TestCampaignProfile:
    CONFIG = CampaignConfig(mode="scoped", kinds=("MachineCrash",))

    def test_unprofiled_cells_carry_no_profile(self):
        report = run_campaign(self.CONFIG, jobs=1)
        assert all(r["profile"] is None for r in report["cells"])

    def test_profiled_cells_carry_attribution(self):
        report = run_campaign(self.CONFIG, jobs=1, profile=True)
        for record in report["cells"]:
            profile = record["profile"]
            assert profile["events"] > 0 and profile["sim_time"] > 0
            assert profile["top"]
            assert {"daemon", "phase", "scope", "events", "sim_time"} == set(
                profile["top"][0]
            )

    def test_profile_is_deterministic_across_fanout(self):
        serial = run_campaign(self.CONFIG, jobs=1, profile=True)
        parallel = run_campaign(self.CONFIG, jobs=2, profile=True)
        assert serial == parallel

    def test_profiling_does_not_change_the_verdicts(self):
        bare = run_campaign(self.CONFIG, jobs=1)
        profiled = run_campaign(self.CONFIG, jobs=1, profile=True)
        for record in profiled["cells"]:
            record["profile"] = None
        assert bare == profiled


class TestFullMatrixSlow:
    """The multi-fault sweep: order-2 combinations across the catalogue.
    Deselected from tier-1 (see pyproject addopts); run with ``-m slow``."""

    def test_order2_scoped_campaign_stays_clean(self):
        report = _campaign("scoped", max_order=2)
        assert report["totals"]["cells"] > len(CATALOGUE)
        assert report["totals"]["violations"] == 0

    def test_order2_classic_reproducers_replay(self):
        report = _campaign("classic", max_order=2)
        violating = [r for r in report["cells"] if r["violations"]]
        assert violating
        for record in violating:
            assert replay(record["reproducer"])["reproduced"]
