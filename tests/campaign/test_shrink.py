"""Delta debugging and reproducer replay."""

import json

import pytest

from repro.campaign.shrink import ddmin, minimize_cell, replay
from repro.campaign.spec import CampaignConfig, CellSpec, FaultSpec, enumerate_cells


class TestDdmin:
    def test_single_culprit_is_isolated(self):
        items = tuple(range(8))
        assert ddmin(items, lambda s: 5 in s) == (5,)

    def test_pair_of_culprits_is_isolated(self):
        items = tuple(range(8))
        result = ddmin(items, lambda s: 2 in s and 6 in s)
        assert sorted(result) == [2, 6]

    def test_result_is_one_minimal(self):
        items = tuple(range(10))
        culprits = {1, 4, 7}
        result = ddmin(items, lambda s: culprits <= set(s))
        assert set(result) == culprits
        for drop in result:
            remaining = tuple(x for x in result if x != drop)
            assert not culprits <= set(remaining)

    def test_everything_essential_returns_everything(self):
        items = (1, 2, 3)
        assert ddmin(items, lambda s: len(s) == 3) == items

    def test_precondition_enforced(self):
        with pytest.raises(ValueError, match="precondition"):
            ddmin((1, 2), lambda s: False)

    def test_call_count_stays_polynomial(self):
        calls = 0

        def fails(subset):
            nonlocal calls
            calls += 1
            return 13 in subset

        ddmin(tuple(range(32)), fails)
        assert calls < 200  # ddmin is O(n^2) worst case; way under here


class TestMinimizeCell:
    def test_multi_fault_cell_shrinks_to_the_culprit(self):
        """MisconfiguredJvm drives the classic P1; HomeDiskFull is an
        innocent bystander (FILE scope, within contract) that must be
        shrunk away."""
        config = CampaignConfig(mode="classic", windows=((0.0, None),))
        cell = CellSpec(
            "classic/s0/pair", "classic", 0,
            (FaultSpec("MisconfiguredJvm", site="exec000"),
             FaultSpec("HomeDiskFull")),
        )
        spec = minimize_cell(cell, config)
        assert [inj["kind"] for inj in spec["injections"]] == ["MisconfiguredJvm"]
        assert spec["expect"]
        assert replay(spec)["reproduced"]

    def test_reproducer_spec_round_trips_through_json(self, tmp_path):
        config = CampaignConfig(
            mode="classic", kinds=("MisconfiguredJvm",), windows=((0.0, None),)
        )
        (cell,) = enumerate_cells(config)
        spec = minimize_cell(cell, config)
        path = tmp_path / "reproducer.json"
        path.write_text(json.dumps(spec))
        outcome = replay(str(path))
        assert outcome["reproduced"]
        assert outcome["violations"] == spec["expect"]

    def test_replay_detects_divergence(self):
        """A tampered expectation must not be reported as reproduced."""
        config = CampaignConfig(
            mode="classic", kinds=("MisconfiguredJvm",), windows=((0.0, None),)
        )
        (cell,) = enumerate_cells(config)
        spec = minimize_cell(cell, config)
        spec["expect"][0]["subject"] = "9.9"
        assert not replay(spec)["reproduced"]

    def test_replay_rejects_foreign_documents(self):
        with pytest.raises(ValueError, match="not a campaign reproducer"):
            replay({"format": "something-else"})
