"""The ``campaign`` subcommand of ``python -m repro.harness``."""

import json

import pytest

from repro.campaign.cli import main as campaign_main
from repro.campaign.spec import CATALOGUE, CampaignConfig, enumerate_cells
from repro.campaign.shrink import minimize_cell
from repro.harness.__main__ import main as harness_main

FAST = ["--kinds", "MisconfiguredJvm,CredentialExpiry"]


def test_harness_dispatches_campaign_subcommand(capsys):
    assert harness_main(["campaign", "--list-kinds"]) == 0
    out = capsys.readouterr().out
    assert "fault catalogue:" in out


def test_list_kinds_covers_the_catalogue(capsys):
    assert campaign_main(["--list-kinds"]) == 0
    out = capsys.readouterr().out
    for info in CATALOGUE:
        assert info.kind in out


def test_scoped_campaign_prints_clean_summary(capsys):
    assert campaign_main(FAST) == 0
    out = capsys.readouterr().out
    assert "MisconfiguredJvm" in out
    assert "wall clock" in out
    assert "0 violations" in out


def test_classic_campaign_reports_violations(capsys):
    assert campaign_main(FAST + ["--mode", "classic"]) == 0
    out = capsys.readouterr().out
    assert "violation" in out


def test_profile_flag_renders_per_cell_time_tables(capsys):
    assert campaign_main(FAST + ["--profile"]) == 0
    out = capsys.readouterr().out
    assert "where time went:" in out
    assert "total " in out and "events" in out


def test_unprofiled_campaign_prints_no_time_tables(capsys):
    assert campaign_main(FAST) == 0
    assert "where time went" not in capsys.readouterr().out


def test_json_report_is_written_and_canonical(tmp_path, capsys):
    path = tmp_path / "report.json"
    assert campaign_main(FAST + ["--json", str(path)]) == 0
    report = json.loads(path.read_text())
    assert report["campaign"]["mode"] == "scoped"
    assert report["totals"]["violations"] == 0
    assert "wall" not in path.read_text()


def test_fail_fast_exits_nonzero_on_classic(capsys):
    code = campaign_main(
        ["--kinds", "MisconfiguredJvm", "--mode", "classic", "--fail-fast"]
    )
    assert code == 1
    assert "fail-fast" in capsys.readouterr().out


def test_replay_subcommand_round_trips(tmp_path, capsys):
    config = CampaignConfig(
        mode="classic", kinds=("MisconfiguredJvm",), windows=((0.0, None),)
    )
    (cell,) = enumerate_cells(config)
    spec = minimize_cell(cell, config)
    path = tmp_path / "reproducer.json"
    path.write_text(json.dumps(spec))
    assert campaign_main(["--replay", str(path)]) == 0
    assert "reproduced" in capsys.readouterr().out


def test_bad_jobs_rejected():
    with pytest.raises(SystemExit):
        campaign_main(["--jobs", "0"])


def test_bad_order_rejected():
    with pytest.raises(SystemExit):
        campaign_main(["--order", "0"])


FUZZ_FAST = ["fuzz", "--mode", "classic", "--seed", "7",
             "--budget-cells", "16", "--batch-size", "8"]


def test_harness_dispatches_fuzz_subcommand(capsys):
    assert harness_main(["campaign", *FUZZ_FAST, "--no-shrink"]) == 0
    out = capsys.readouterr().out
    assert "fuzz campaign: mode=classic seed=7" in out
    assert "wall clock" in out


def test_fuzz_json_report_is_written_and_canonical(tmp_path, capsys):
    path = tmp_path / "fuzz.json"
    assert campaign_main(
        FUZZ_FAST + ["--no-shrink", "--json", str(path)]
    ) == 0
    report = json.loads(path.read_text())
    assert report["format"] == "repro-campaign-fuzz/1"
    assert report["totals"]["cells"] == 16
    assert "wall" not in path.read_text()


def test_fuzz_resume_from_cli_checkpoint(tmp_path, capsys):
    ckpt = tmp_path / "ckpt.json"
    assert campaign_main(
        FUZZ_FAST + ["--no-shrink", "--checkpoint", str(ckpt)]
    ) == 0
    # a finished checkpoint resumes into an already-exhausted budget
    assert campaign_main(["fuzz", "--resume", str(ckpt), "--no-shrink"]) == 0
    assert "fuzz campaign: mode=classic seed=7" in capsys.readouterr().out


def test_fuzz_bad_budget_rejected():
    with pytest.raises(SystemExit):
        campaign_main(["fuzz", "--budget-cells", "0"])
