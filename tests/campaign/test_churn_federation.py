"""Campaign coverage of the churn and federation fault kinds.

The headline robustness claim of this PR: the churn faults
(MachineChurn, BlackHoleChurn) swept under ``scoped`` mode with the §5
defenses on produce **zero** P1-P4 violations, while the ``classic``
configuration lets the churned black hole collapse into at least one
violation.  Federation cells (``--federation``) run the same audit over
a two-pool grid with FlockLinkDown in play.
"""

import pytest

from repro.campaign.engine import run_campaign
from repro.campaign.shrink import replay
from repro.campaign.spec import CampaignConfig, enumerate_cells

CHURN_KINDS = ("MachineChurn", "BlackHoleChurn")


def _campaign(mode, kinds=CHURN_KINDS, **overrides):
    config = CampaignConfig(mode=mode, kinds=kinds, **overrides)
    return run_campaign(config, jobs=1)


class TestChurnCells:
    def test_scoped_with_defenses_is_clean(self):
        report = _campaign("scoped", defenses=True)
        assert report["totals"]["cells"] > 0
        assert report["totals"]["violations"] == 0
        assert all(r["live_matches_posthoc"] for r in report["cells"])

    def test_classic_detects_the_churned_black_hole(self):
        report = _campaign("classic")
        assert report["totals"]["violations"] >= 1
        violating = [r for r in report["cells"] if r["violations"]]
        kinds = {
            injection["kind"]
            for record in violating
            for injection in record["injections"]
        }
        assert "BlackHoleChurn" in kinds

    def test_classic_reproducers_replay_with_their_flags(self):
        """Shrunken specs round-trip federation/defenses, so a replay
        rebuilds the same world the violation was found in."""
        report = _campaign("classic")
        violating = [r for r in report["cells"] if r["violations"]]
        assert violating
        for record in violating:
            spec = record["reproducer"]
            assert spec is not None
            assert spec["defenses"] is False
            outcome = replay(spec)
            assert outcome["reproduced"], f"{record['cell']}: replay diverged"


class TestFederationCells:
    def test_flock_link_down_requires_federation(self):
        with pytest.raises(ValueError, match="need --federation"):
            enumerate_cells(CampaignConfig(kinds=("FlockLinkDown",)))

    def test_default_matrix_skips_federation_only_kinds(self):
        cells = enumerate_cells(CampaignConfig())
        kinds = {spec.kind for cell in cells for spec in cell.injections}
        assert "FlockLinkDown" not in kinds

    def test_federated_scoped_sweep_is_clean(self):
        report = _campaign(
            "scoped", kinds=("FlockLinkDown", "MachineChurn"),
            federation=True, defenses=True,
        )
        assert report["campaign"]["federation"] is True
        assert report["totals"]["violations"] == 0
        swept = {
            injection["kind"]
            for record in report["cells"]
            for injection in record["injections"]
        }
        assert swept == {"FlockLinkDown", "MachineChurn"}

    def test_site_names_resolve_across_pool_prefixes(self):
        """A CellSpec site like ``exec000`` targets ``a-exec000`` on a
        grid, so one spec vocabulary covers both world shapes."""
        from repro.campaign.spec import _resolve_site
        from repro.condor.grid import Grid, GridConfig, GridPoolSpec

        grid = Grid(GridConfig(pools=(GridPoolSpec("a", n_machines=2),
                                      GridPoolSpec("b", n_machines=2))))
        assert _resolve_site("exec000", grid) == "a-exec000"
        assert _resolve_site("a-exec000", grid) == "a-exec000"


@pytest.mark.slow
class TestChurnFlockSweepSlow:
    """Order-2: every churn x federation pair, audited end to end."""

    def test_order2_churn_federation_scoped_stays_clean(self):
        report = _campaign(
            "scoped",
            kinds=("MachineChurn", "BlackHoleChurn", "FlockLinkDown"),
            federation=True, defenses=True, max_order=2,
        )
        assert report["totals"]["cells"] > 3
        assert report["totals"]["violations"] == 0
        assert all(r["live_matches_posthoc"] for r in report["cells"])
