"""The fuzzer's determinism contract, byte for byte.

Same seed and budget must produce the identical report whether the
cells run serially, fan out over worker processes, or the campaign is
interrupted at a checkpoint and resumed -- the same guarantee the
exhaustive campaign gives (DESIGN.md §6), extended to the fuzzer's
corpus/coverage/probe state.
"""

import pytest

from repro.campaign.fuzz import FuzzConfig, load_checkpoint, run_fuzz
from repro.campaign.spec import CampaignConfig
from repro.obs.export import dump_json


def _config(budget=40):
    return FuzzConfig(
        campaign=CampaignConfig(mode="classic", seed=7),
        budget_cells=budget,
        batch_size=8,
    )


def _dump(tmp_path, name, report) -> bytes:
    path = tmp_path / name
    dump_json(path, report)
    return path.read_bytes()


@pytest.fixture(scope="module")
def serial_report():
    return run_fuzz(_config())


class TestByteIdentity:
    def test_same_seed_twice_is_identical(self, serial_report, tmp_path):
        again = run_fuzz(_config())
        assert _dump(tmp_path, "a.json", serial_report) == _dump(
            tmp_path, "b.json", again
        )

    def test_serial_equals_jobs_4(self, serial_report, tmp_path):
        parallel = run_fuzz(_config(), jobs=4)
        assert _dump(tmp_path, "serial.json", serial_report) == _dump(
            tmp_path, "parallel.json", parallel
        )

    def test_resume_from_checkpoint_is_identical(self, serial_report, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        run_fuzz(_config(), shrink=False, checkpoint=str(ckpt),
                 stop_after_batch=2)
        config, data = load_checkpoint(str(ckpt))
        resumed = run_fuzz(config, resume=data)
        assert _dump(tmp_path, "full.json", serial_report) == _dump(
            tmp_path, "resumed.json", resumed
        )

    def test_resume_by_path_is_identical(self, serial_report, tmp_path):
        ckpt = tmp_path / "ckpt2.json"
        run_fuzz(_config(), shrink=False, checkpoint=str(ckpt),
                 stop_after_batch=1)
        resumed = run_fuzz(_config(), resume=str(ckpt))
        assert _dump(tmp_path, "full2.json", serial_report) == _dump(
            tmp_path, "resumed2.json", resumed
        )


class TestCheckpointState:
    def test_checkpoint_written_after_every_batch(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        run_fuzz(_config(budget=16), shrink=False, checkpoint=str(ckpt),
                 stop_after_batch=1)
        _, data = load_checkpoint(str(ckpt))
        assert data["batch"] == 2
        assert len(data["records"]) == 16
        # the checkpoint carries everything resume needs
        for section in ("coverage", "corpus", "hits", "violation_signatures",
                        "probes"):
            assert section in data

    def test_reports_carry_no_wall_clock(self, serial_report):
        def scan(node, path="report"):
            if isinstance(node, dict):
                for key, value in node.items():
                    assert key not in ("seconds", "wall", "elapsed",
                                       "timestamp", "wall_clock"), path
                    scan(value, f"{path}.{key}")
            elif isinstance(node, list):
                for i, value in enumerate(node):
                    scan(value, f"{path}[{i}]")

        scan(serial_report)
