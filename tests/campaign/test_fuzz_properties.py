"""Hypothesis properties pinning the fuzzer's two core contracts.

1. **Mutator validity**: whatever the PRNG does, every injection set a
   :class:`~repro.campaign.fuzz.MutationEngine` proposes stays inside
   the valid fault space -- catalogue kinds only, distinct kinds,
   non-negative windows with ``until > at``, open windows on
   non-disarmable kinds, targets bound per kind, order within bounds,
   federation-gated kinds only on a federation.
2. **Coverage-merge algebra**: :meth:`CoverageMap.merge` is a
   semilattice join (associative, commutative, idempotent), which is
   what entitles the campaign to merge per-cell coverage in any grouping
   and still match a serial run byte for byte.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.corpus import Corpus, CorpusEntry
from repro.campaign.coverage import CoverageMap, FirstSeen
from repro.campaign.fuzz import (
    FuzzConfig,
    MutationEngine,
    MutationSpace,
    validate_injections,
)
from repro.campaign.spec import CampaignConfig, CellSpec

SOLITARY = MutationSpace.from_config(
    FuzzConfig(campaign=CampaignConfig(mode="classic", seed=7))
)
FEDERATED = MutationSpace.from_config(
    FuzzConfig(campaign=CampaignConfig(mode="classic", seed=7, federation=True))
)


class TestMutatorValidity:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), space_fed=st.booleans())
    def test_random_walks_stay_inside_the_valid_space(self, seed, space_fed):
        """Ten chained mutations from a fresh cell never leave the space."""
        space = FEDERATED if space_fed else SOLITARY
        engine = MutationEngine(space)
        rng = random.Random(seed)
        parent = engine.fresh(rng)
        assert validate_injections(parent, space) == []
        partner = engine.fresh(rng)
        for _ in range(10):
            proposal = engine.propose(rng, parent, partner)
            if proposal is None:
                continue
            mutator, child = proposal
            problems = validate_injections(child, space)
            assert problems == [], f"{mutator} produced {problems}"
            # explicit re-statements of the load-bearing invariants
            assert len(child) <= space.order_max
            kinds = [spec.kind for spec in child]
            assert len(set(kinds)) == len(kinds)
            for spec in child:
                assert spec.at >= 0
                assert spec.until is None or spec.until > spec.at
            parent, partner = child, parent

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_solitary_space_never_proposes_federation_kinds(self, seed):
        engine = MutationEngine(SOLITARY)
        rng = random.Random(seed)
        parent, partner = engine.fresh(rng), engine.fresh(rng)
        for _ in range(10):
            proposal = engine.propose(rng, parent, partner)
            if proposal is None:
                continue
            _, child = proposal
            assert all(spec.kind != "FlockLinkDown" for spec in child)
            parent, partner = child, parent

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_proposals_are_canonically_ordered(self, seed):
        """Equal injection sets must serialize equally for dedup to work."""
        engine = MutationEngine(SOLITARY)
        rng = random.Random(seed)
        proposal = engine.propose(rng, engine.fresh(rng), engine.fresh(rng))
        if proposal is None:
            return
        _, child = proposal
        key = [
            (s.kind, s.site or "", -1 if s.job_index is None else s.job_index,
             s.at, float("inf") if s.until is None else s.until)
            for s in child
        ]
        assert key == sorted(key)


# -- coverage algebra ---------------------------------------------------
features = st.sampled_from(["viol:P1:a", "viol:P3:b", "journey:job:x>y",
                            "shape:queued>claim", "outcome:completed"])
seens = st.builds(
    FirstSeen,
    batch=st.integers(0, 3),
    index=st.integers(0, 20),
    cell=st.sampled_from(["cell-a", "cell-b", "cell-c"]),
)
coverage_maps = st.dictionaries(features, seens, max_size=5).map(CoverageMap)


class TestCoverageAlgebra:
    @settings(max_examples=100, deadline=None)
    @given(a=coverage_maps, b=coverage_maps, c=coverage_maps)
    def test_merge_is_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @settings(max_examples=100, deadline=None)
    @given(a=coverage_maps, b=coverage_maps)
    def test_merge_is_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @settings(max_examples=100, deadline=None)
    @given(a=coverage_maps)
    def test_merge_is_idempotent(self, a):
        assert a.merge(a) == a

    @settings(max_examples=100, deadline=None)
    @given(a=coverage_maps, b=coverage_maps)
    def test_merge_keeps_earliest_provenance(self, a, b):
        merged = a.merge(b)
        for feature, seen in merged.features.items():
            candidates = [m.features[feature] for m in (a, b)
                          if feature in m.features]
            assert seen == min(candidates)

    @settings(max_examples=60, deadline=None)
    @given(a=coverage_maps)
    def test_serialization_round_trips(self, a):
        assert CoverageMap.from_dict(a.as_dict()) == a


class TestCorpusEnergies:
    @settings(max_examples=60, deadline=None)
    @given(
        hits=st.dictionaries(features, st.integers(1, 50), max_size=5),
        signature=st.lists(features, max_size=4, unique=True),
    )
    def test_energies_are_positive_and_finite(self, hits, signature):
        cell = CellSpec("classic/s0/x", "classic", 0, ())
        corpus = Corpus([CorpusEntry(
            cell=cell, signature=tuple(signature),
            novel=tuple(signature[:1]), batch=0, violations=0,
        )])
        [energy] = corpus.energies(hits)
        assert energy > 0
        assert energy < float("inf")
