"""The coverage-guided fuzzer: smoke, report schema, error normalization."""

import json

import pytest

from repro.campaign.engine import run_cell_record
from repro.campaign.fuzz import (
    CHECKPOINT_FORMAT,
    FORMAT,
    FuzzConfig,
    MutationSpace,
    load_checkpoint,
    run_fuzz,
)
from repro.campaign.report import render_fuzz_summary
from repro.campaign.spec import CampaignConfig, CellSpec, FaultSpec
from repro.harness.parallel import WorkerFailure
from repro.obs.export import dump_json


def _config(mode="classic", seed=7, budget=24, batch=8, **kw):
    return FuzzConfig(
        campaign=CampaignConfig(mode=mode, seed=seed),
        budget_cells=budget,
        batch_size=batch,
        **kw,
    )


@pytest.fixture(scope="module")
def smoke_report():
    """One tiny classic-mode campaign shared by the smoke assertions."""
    return run_fuzz(_config(), shrink=False)


class TestSmoke:
    def test_classic_tiny_budget_finds_known_violations(self, smoke_report):
        # The CI smoke gate: even 24 cells in classic mode must trip the
        # P1 exit-code masking the exhaustive campaign pinned in PR 3.
        assert smoke_report["totals"]["violations"] > 0
        features = smoke_report["violations"]["signatures"]
        assert any(f.startswith("viol:P1:") for f in features)

    def test_report_format_and_sections(self, smoke_report):
        assert smoke_report["format"] == FORMAT
        assert smoke_report["campaign"]["mode"] == "classic"
        assert smoke_report["campaign"]["seed"] == 7
        fuzz = smoke_report["fuzz"]
        assert fuzz["budget_cells"] == 24
        assert fuzz["batch_size"] == 8
        assert set(fuzz["mutators"]) >= {"add", "crossover", "escalate", "drop"}
        for section in ("cells", "coverage", "corpus", "violations",
                        "reproducers", "totals"):
            assert section in smoke_report

    def test_budget_is_respected(self, smoke_report):
        assert smoke_report["totals"]["cells"] == 24
        assert len(smoke_report["cells"]) == 24

    def test_bootstrap_is_clean_cell_plus_singles(self, smoke_report):
        first = smoke_report["cells"][0]
        assert first["injections"] == []
        catalogue = {info.kind for info in CampaignConfig(mode="classic").catalogue()}
        for record in smoke_report["cells"][1:8]:
            assert len(record["injections"]) == 1
            assert record["injections"][0]["kind"] in catalogue
            assert record["injections"][0]["until"] is None

    def test_order_never_exceeds_order_max(self, smoke_report):
        for record in smoke_report["cells"]:
            assert len(record["injections"]) <= 3

    def test_every_record_carries_fuzz_fields(self, smoke_report):
        for record in smoke_report["cells"]:
            assert isinstance(record["signature"], list)
            assert isinstance(record["batch"], int)
            assert isinstance(record["novel"], list)
            assert "probe" in record

    def test_coverage_and_corpus_are_consistent(self, smoke_report):
        novel_cells = [r for r in smoke_report["cells"] if r["novel"]]
        assert smoke_report["totals"]["corpus"] == len(novel_cells)
        first_seen = smoke_report["coverage"]["first_seen"]
        assert smoke_report["totals"]["features"] == len(first_seen)
        # every novel feature's provenance names the cell that found it
        for record in novel_cells:
            for feature in record["novel"]:
                assert first_seen[feature]["cell"] == record["cell"]

    def test_report_is_json_serializable_canonically(self, smoke_report, tmp_path):
        path = tmp_path / "fuzz.json"
        dump_json(path, smoke_report)
        assert json.loads(path.read_text())["format"] == FORMAT

    def test_summary_renders(self, smoke_report):
        text = render_fuzz_summary(smoke_report)
        assert "fuzz campaign: mode=classic seed=7" in text
        assert "first violation at cell" in text


class TestConfigValidation:
    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError, match="budget_cells"):
            FuzzConfig(budget_cells=0)

    def test_bad_batch_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            FuzzConfig(batch_size=0)

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError, match="order_max"):
            FuzzConfig(order_max=0)

    def test_space_excludes_federation_kinds_on_solitary_pool(self):
        space = MutationSpace.from_config(_config())
        assert "FlockLinkDown" not in {info.kind for info in space.kinds}
        federated = MutationSpace.from_config(FuzzConfig(
            campaign=CampaignConfig(mode="classic", federation=True)
        ))
        assert "FlockLinkDown" in {info.kind for info in federated.kinds}


class TestCellErrorRecord:
    """A raising cell becomes a structured record, not a dead campaign."""

    def _broken_cell(self):
        # MemoryPressure resolves its machine during fault *setup*; a
        # nonexistent site makes build_fault raise before simulation.
        spec = FaultSpec(kind="MemoryPressure", site="exec999")
        return CellSpec("classic/s0/broken", "classic", 0, (spec,))

    def test_on_error_record_normalizes_setup_raise(self):
        record = run_cell_record(
            self._broken_cell(), CampaignConfig(mode="classic"),
            features=True, on_error="record",
        )
        assert record["error"]["stage"] == "setup"
        assert record["error"]["type"] == "KeyError"
        # the row still names the faults that broke it
        assert record["injections"][0]["kind"] == "MemoryPressure"
        assert record["violations"] == []
        assert record["signature"] == ["cell-error:setup:KeyError"]

    def test_default_on_error_still_raises_the_original(self):
        with pytest.raises(KeyError):
            run_cell_record(self._broken_cell(), CampaignConfig(mode="classic"))

    def test_fuzz_campaign_survives_error_cells(self):
        # Churn composed with same-site faults raises inside the sim;
        # the campaign must absorb those as cell-error coverage, and the
        # error count must reconcile with the per-cell records.
        report = run_fuzz(_config(budget=40), shrink=False)
        errored = [r for r in report["cells"] if r["error"] is not None]
        assert report["totals"]["errors"] == len(errored)
        for record in errored:
            assert record["signature"][0].startswith("cell-error:")


class TestCheckpointLoading:
    def test_load_checkpoint_round_trips_config(self, tmp_path):
        path = tmp_path / "ckpt.json"
        run_fuzz(_config(budget=16), shrink=False,
                 checkpoint=str(path), stop_after_batch=0)
        config, data = load_checkpoint(str(path))
        assert config == _config(budget=16)
        assert data["format"] == CHECKPOINT_FORMAT
        assert data["batch"] == 1

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else/9"}')
        with pytest.raises(ValueError, match="not a fuzz checkpoint"):
            load_checkpoint(str(path))

    def test_resume_with_mismatched_config_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        run_fuzz(_config(budget=16), shrink=False,
                 checkpoint=str(path), stop_after_batch=0)
        other = _config(mode="scoped", budget=16)
        with pytest.raises(ValueError, match="does not match"):
            run_fuzz(other, resume=str(path))


def test_worker_failure_stays_explicit():
    """The fuzzer rides ParallelRunner's failure contract: fan-out holes
    surface as WorkerFailure, never as silently shorter reports."""
    assert issubclass(WorkerFailure, RuntimeError)
