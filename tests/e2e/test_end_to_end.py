"""Tests for the end-to-end layer and silent data corruption (§5)."""

import pytest

from repro.condor import Job, JobState, Pool, PoolConfig, ProgramImage, Universe
from repro.core.result import ResultFile
from repro.e2e import EndToEndManager, JobValidation, OutputExpectation
from repro.faults import FaultInjector
from repro.faults.faults import SilentDataCorruption
from repro.jvm.program import JavaProgram, Step, transform_bytes


def transform_job(pool, job_id="1.0", payload=b"precious-data"):
    src = f"/home/user/in-{job_id}.dat"
    dst = f"/home/user/out-{job_id}.dat"
    pool.home_fs.write_file(src, payload)
    program = JavaProgram(steps=[Step.transform(src, dst)])
    job = Job(job_id, owner="thain", universe=Universe.JAVA,
              image=ProgramImage(f"{job_id}.class", program=program))
    validation = JobValidation(
        expectations=[OutputExpectation(dst, transform_bytes(payload))],
        expected_result=ResultFile.completed(0),
    )
    return job, validation


class TestTransformStep:
    def test_transform_bytes_involution(self):
        data = b"abcdef"
        assert transform_bytes(transform_bytes(data)) == data

    def test_transform_writes_reversal(self):
        pool = Pool(PoolConfig(n_machines=1))
        job, _ = transform_job(pool, payload=b"12345")
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.COMPLETED
        assert pool.home_fs.read_file("/home/user/out-1.0.dat") == b"54321"


class TestSilentCorruption:
    def test_corruption_changes_output_silently(self):
        pool = Pool(PoolConfig(n_machines=1, seed=5))
        FaultInjector(pool).schedule(SilentDataCorruption(1.0))
        job, validation = transform_job(pool)
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        # The job "succeeded" -- that is exactly the problem.
        assert job.state is JobState.COMPLETED
        assert job.final_result.exit_code == 0
        assert pool.net.corruptions > 0
        assert validation.validate(job, pool.home_fs)  # but the output is wrong

    def test_corruption_excluded_from_p1_audit(self):
        """Silent corruption is an implicit error the system never saw --
        not a P1 violation of the propagation machinery."""
        pool = Pool(PoolConfig(n_machines=1, seed=5))
        injector = FaultInjector(pool)
        injector.schedule(SilentDataCorruption(1.0))
        job, _ = transform_job(pool)
        job.expected_result = ResultFile.completed(0)
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        records = injector.audit_outcomes([job])
        assert records[0].truth_scope is None

    def test_zero_probability_never_corrupts(self):
        pool = Pool(PoolConfig(n_machines=1, seed=5))
        FaultInjector(pool).schedule(SilentDataCorruption(0.0))
        job, validation = transform_job(pool)
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert validation.validate(job, pool.home_fs) == []

    def test_disarm_stops_corruption(self):
        pool = Pool(PoolConfig(n_machines=1, seed=5))
        fault = SilentDataCorruption(1.0)
        fault.arm(pool)
        fault.disarm(pool)
        assert pool.net.corrupt_probability == 0.0

    def test_corruption_spares_control_messages(self):
        """Only Chirp/RPC reply payloads are eligible: the kernel's control
        protocols still work under full corruption."""
        pool = Pool(PoolConfig(n_machines=2, seed=5))
        FaultInjector(pool).schedule(SilentDataCorruption(1.0))
        program = JavaProgram(steps=[Step.compute(3.0), Step.exit(4)])
        job = Job("9.0", owner="thain", universe=Universe.JAVA,
                  image=ProgramImage("x.class", program=program))
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        assert job.state is JobState.COMPLETED
        assert job.final_result.exit_code == 4


class TestValidator:
    def test_missing_output_reported(self):
        pool = Pool(PoolConfig(n_machines=1))
        validation = JobValidation(
            expectations=[OutputExpectation("/home/user/none", b"x")]
        )
        job, _ = transform_job(pool, job_id="2.0")
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        problems = validation.validate(job, pool.home_fs)
        assert problems and "missing" in problems[0]

    def test_incomplete_job_reported(self):
        pool = Pool(PoolConfig(n_machines=1))
        job, validation = transform_job(pool, job_id="3.0")
        # never submitted/run
        problems = validation.validate(job, pool.home_fs)
        assert problems and "not completed" in problems[0]

    def test_result_mismatch_reported(self):
        pool = Pool(PoolConfig(n_machines=1))
        job, _ = transform_job(pool, job_id="4.0")
        validation = JobValidation(expected_result=ResultFile.completed(77))
        pool.submit(job)
        pool.run_until_done(max_time=50_000)
        problems = validation.validate(job, pool.home_fs)
        assert problems and "result mismatch" in problems[0]


class TestEndToEndManager:
    def test_clean_run_accepted_without_resubmits(self):
        pool = Pool(PoolConfig(n_machines=2))
        manager = EndToEndManager(pool)
        job, validation = transform_job(pool)
        lineage = manager.submit(job, validation)
        manager.run()
        assert lineage.valid
        assert lineage.resubmits == 0
        assert manager.summary()["valid"] == 1

    def test_corrupted_run_resubmitted_until_valid(self):
        pool = Pool(PoolConfig(n_machines=2, seed=11))
        injector = FaultInjector(pool)
        # Corrupt heavily but not always: a retry can succeed.
        injector.schedule(SilentDataCorruption(0.5))
        manager = EndToEndManager(pool, max_resubmits=8)
        job, validation = transform_job(pool)
        lineage = manager.submit(job, validation)
        manager.run()
        assert lineage.valid
        assert lineage.resubmits > 0
        assert lineage.problems_seen

    def test_budget_exhaustion_leaves_lineage_invalid(self):
        pool = Pool(PoolConfig(n_machines=2, seed=11))
        manager = EndToEndManager(pool, max_resubmits=2)
        job, _ = transform_job(pool)
        # A validation no run can ever satisfy: the budget must run out.
        hopeless = JobValidation(
            expectations=[OutputExpectation("/home/user/out-1.0.dat", b"impossible")]
        )
        lineage = manager.submit(job, hopeless)
        manager.run()
        assert not lineage.valid
        assert lineage.resubmits == 2
        assert manager.summary()["invalid"] == 1

    def test_catches_condor_failures_too(self):
        """'...or failures in Condor itself': a held job fails validation."""
        from repro.faults import CorruptProgramImage

        pool = Pool(PoolConfig(n_machines=2))
        manager = EndToEndManager(pool, max_resubmits=1)
        job, validation = transform_job(pool)
        lineage = manager.submit(job, validation)
        FaultInjector(pool).schedule(CorruptProgramImage(job.job_id))
        manager.run()
        assert not lineage.valid or lineage.resubmits > 0
        assert any("not completed" in p for p in lineage.problems_seen)

    def test_clone_preserves_job_identity_fields(self):
        pool = Pool(PoolConfig(n_machines=1))
        job, _ = transform_job(pool, job_id="7.0")
        clone = EndToEndManager._clone(job, attempt=2)
        assert clone.job_id == "7.0r2"
        assert clone.owner == job.owner
        assert clone.image.program is job.image.program
        assert clone.universe is job.universe
