"""EXP-CKPT -- Standard Universe checkpointing ablation (paper §2.1).

Condor is "uniquely prepared to deal with an unfriendly execution
environment by using tools such as process migration and transparent
remote I/O" -- this bench ablates the checkpointing half of that claim
under an eviction storm.
"""

from repro.harness.experiments import run_checkpoint_ablation


def test_checkpoint_ablation(benchmark):
    result = benchmark.pedantic(run_checkpoint_ablation, rounds=3, iterations=1)
    print()
    print(result.table().render())
    with_ckpt = result.row(True)
    without = result.row(False)
    assert with_ckpt.completed == without.completed  # both finish eventually
    assert with_ckpt.reexecuted_steps < without.reexecuted_steps
    assert with_ckpt.makespan <= without.makespan
