"""EXP-FUZZ -- the coverage-guided fuzz campaign, end to end.

Not a paper figure: the throughput/determinism check for the
:mod:`repro.campaign.fuzz` explorer.  One classic-mode campaign at the
acceptance settings (seed 7, 200-cell budget) runs to completion each
round; the sim-side record pins the discovery trajectory -- where the
first violation landed, when all four principles were covered, how many
distinct signatures and coverage features the budget bought, and the
deepest 1-minimal reproducer order the signature-preserving shrinker
confirmed.  Any drift in mutation scheduling, probe ordering, or
coverage accounting moves these numbers and fails the baseline compare;
the wall-time trajectory tracks the explorer's cost per cell.

Cases:

- ``test_fuzz_campaign_acceptance``: the full seed-7 campaign with
  shrinking; must cover all principles >= 10x earlier than the 103-cell
  exhaustive order-2 sweep and surface an order-3 1-minimal reproducer.
"""

from repro.campaign.fuzz import FuzzConfig, run_fuzz
from repro.campaign.spec import CampaignConfig


def _acceptance_campaign():
    return run_fuzz(FuzzConfig(
        campaign=CampaignConfig(mode="classic", seed=7),
        budget_cells=200,
    ))


def test_fuzz_campaign_acceptance(benchmark):
    report = benchmark.pedantic(_acceptance_campaign, rounds=3, iterations=1)
    totals = report["totals"]
    violations = report["violations"]
    assert totals["cells"] == 200
    assert violations["principles"] == [1, 2, 3, 4]
    # >= 10x fewer cells than the 103-cell exhaustive order-2 sweep
    assert violations["all_principles_at"] * 10 <= 103
    assert totals["max_minimal_order"] >= 3
    print()
    print(f"first violation at cell {violations['first_violation_at']}, "
          f"all principles at cell {violations['all_principles_at']}")
    print(f"{totals['distinct_violations']} distinct violations, "
          f"{totals['features']} coverage features, "
          f"corpus {totals['corpus']}, {totals['probe_cells']} probe cells, "
          f"{len(report['reproducers'])} reproducers "
          f"(deepest 1-minimal: order {totals['max_minimal_order']})")
