"""EXP-NAIVE vs EXP-SCOPED -- the headline comparison (paper §2.3 vs §4).

The same staggered workload and fault schedule under both configurations.
The shape the paper reports: under the naive system "nearly any failure
... would cause the job to be returned to the user"; after the fix "the
hailstorm of error messages abated".
"""

from repro.harness.experiments import run_naive_vs_scoped


def test_naive_vs_scoped(benchmark):
    result = benchmark.pedantic(
        run_naive_vs_scoped, kwargs=dict(seed=0, n_jobs=24, n_machines=6),
        rounds=3, iterations=1,
    )
    print()
    print(result.table().render())
    # Who wins, and how: the scoped system shields users...
    assert result.scoped.user_visible_incidental < result.naive.user_visible_incidental
    assert result.scoped.correct_results > result.naive.correct_results
    assert result.scoped.postmortems_required < result.naive.postmortems_required
    # ...by spending machine time instead of human time.
    assert result.scoped.wasted_attempts >= result.naive.wasted_attempts
    # And the principles hold only under the fix.
    assert result.naive_violations[1] > 0 and result.scoped_violations[1] == 0
