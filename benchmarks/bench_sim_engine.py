"""Substrate microbenchmarks: the discrete-event kernel.

Ablation support: experiment wall-times are dominated by event dispatch,
so this pins the kernel's events/second and process context-switch cost.
"""

from repro.sim.engine import Simulator


def test_event_dispatch(benchmark):
    def run_events(n=10_000):
        sim = Simulator()
        count = [0]
        for i in range(n):
            sim.call_at(float(i), lambda: count.__setitem__(0, count[0] + 1))
        sim.run()
        return count[0]

    assert benchmark(run_events) == 10_000


def test_process_switching(benchmark):
    def run_processes(n_procs=100, n_yields=100):
        sim = Simulator()

        def proc(sim):
            for _ in range(n_yields):
                yield sim.timeout(1.0)

        for _ in range(n_procs):
            sim.spawn(proc(sim))
        return sim.run()

    assert benchmark(run_processes) == 100.0


def test_network_round_trips(benchmark):
    from repro.sim.network import Network

    def run_pingpong(n=200):
        sim = Simulator()
        net = Network(sim)
        listener = net.listen("server", 1)

        def server(sim):
            conn = yield from listener.accept()
            for _ in range(n):
                msg = yield from conn.recv()
                conn.send(msg)

        def client(sim):
            conn = yield from net.connect("client", "server", 1)
            for i in range(n):
                conn.send(i)
                yield from conn.recv()
            return True

        sim.spawn(server(sim)).defuse()
        proc = sim.spawn(client(sim))
        sim.run()
        return proc.value

    assert benchmark(run_pingpong) is True
