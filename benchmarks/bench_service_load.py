"""EXP-SERVICE -- the concurrent edge under submission storms.

Not a paper figure: the load check for :mod:`repro.service`.  The grid
the paper measures is shared by many simultaneous users; this benchmark
drives the real asyncio server over real sockets with over a thousand
concurrent submitters in one process and holds it to the service's
accounting contract: **every** request ends accepted-and-stored or
typed-rejected -- zero dropped, zero unaccounted (P1 at the service
scope).

Cases:

- ``test_submit_storm``: 1200 concurrent clients, one connection each,
  all submitting the same job spec.  All 1200 must be accepted and
  stored; client-observed latencies land in the wall counters (p50/p95
  printed for EXPERIMENTS.md).
- ``test_admission_control_exact``: 80 submitters against a queue limit
  of 50.  The admission check runs synchronously on the loop thread, so
  the split is exactly 50 accepted / 30 ``QUEUE_FULL`` every time --
  graceful rejection as a deterministic quantity.
- ``test_submit_drain_roundtrip``: 100 concurrent submissions drained
  through the executor into one deterministic pool batch, every run
  ``done``.  This case puts the simulation on the ambient bus, so the
  committed baseline pins the batch's sim-side profile byte-for-byte.

Wall-clock numbers (latency, throughput) live only under strippable
``wall`` keys; the sim-side record is byte-identical across runs.
"""

import asyncio
import statistics
from time import perf_counter_ns

from repro.service import (
    RunStore,
    ServiceApi,
    ServiceApiError,
    ServiceClient,
    ServiceConfig,
    ServiceExecutor,
    ServiceServer,
    mint_token,
)

SECRET = "bench-service-secret"
#: Fixed far-future expiry keeps every request byte-identical run to run.
TOKEN_EXPIRES = 2_208_988_800  # 2040-01-01
JOB_SPEC = {"work": 5.0}

STORM_SUBMITTERS = 1200
ADMISSION_SUBMITTERS = 80
ADMISSION_LIMIT = 50
ROUNDTRIP_SUBMITTERS = 100


def _wall_counters():
    """The installed WallCounters, if the bench runner provided them."""
    from repro.service import server

    return server.WALL_PROFILE


async def _submit_storm(n_submitters: int, queue_limit: int):
    """n concurrent one-connection clients; returns the full accounting."""
    store = RunStore(":memory:")
    api = ServiceApi(
        store, ServiceConfig(secret=SECRET, queue_limit=queue_limit, bench_dir=None)
    )
    server = ServiceServer(api)
    await server.start()
    token = mint_token(SECRET, "load", TOKEN_EXPIRES)
    latencies_ns = []

    async def submit_one():
        client = ServiceClient("127.0.0.1", server.port, token=token)
        try:
            t0 = perf_counter_ns()
            try:
                run = await client.submit_job(JOB_SPEC)
                outcome = ("accepted", run["run_id"])
            except ServiceApiError as exc:
                outcome = ("rejected", exc.code)
            latencies_ns.append(perf_counter_ns() - t0)
            return outcome
        finally:
            await client.close()

    t0 = perf_counter_ns()
    outcomes = await asyncio.gather(*(submit_one() for _ in range(n_submitters)))
    storm_ns = perf_counter_ns() - t0
    await server.stop()

    accepted = sorted(run_id for kind, run_id in outcomes if kind == "accepted")
    rejected = [code for kind, code in outcomes if kind == "rejected"]
    stored = store.queue_stats()
    return {
        "server": server,
        "store": store,
        "accepted": accepted,
        "rejected": rejected,
        "stored": stored,
        "latencies_ns": latencies_ns,
        "storm_seconds": storm_ns / 1e9,
    }


def _record_latencies(name: str, latencies_ns: list, storm_seconds: float):
    """Latency distribution -> wall counters (strippable) + console."""
    wall = _wall_counters()
    if wall is not None:
        for ns in latencies_ns:
            wall.add(f"{name}.latency", ns)
    ordered = sorted(ns / 1e9 for ns in latencies_ns)
    p50 = ordered[len(ordered) // 2]
    p95 = ordered[int(len(ordered) * 0.95)]
    throughput = len(ordered) / storm_seconds
    print(
        f"{name}: {len(ordered)} requests in {storm_seconds:.3f}s "
        f"({throughput:.0f} req/s), latency p50={p50 * 1e3:.2f}ms "
        f"p95={p95 * 1e3:.2f}ms mean={statistics.mean(ordered) * 1e3:.2f}ms"
    )
    return p50, p95


def test_submit_storm(benchmark):
    def storm():
        result = asyncio.run(
            _submit_storm(STORM_SUBMITTERS, queue_limit=STORM_SUBMITTERS + 16)
        )
        # The accounting contract: every submitter accepted AND stored.
        assert len(result["accepted"]) == STORM_SUBMITTERS
        assert result["rejected"] == []
        assert result["accepted"] == list(range(1, STORM_SUBMITTERS + 1))
        assert result["stored"]["total"] == STORM_SUBMITTERS
        assert result["stored"]["by_tenant"] == {"load": STORM_SUBMITTERS}
        assert result["server"].requests_served == STORM_SUBMITTERS
        _record_latencies(
            "service.storm", result["latencies_ns"], result["storm_seconds"]
        )
        result["store"].close()
        return result["stored"]

    benchmark.pedantic(storm, rounds=1)


def test_admission_control_exact(benchmark):
    def admission():
        result = asyncio.run(
            _submit_storm(ADMISSION_SUBMITTERS, queue_limit=ADMISSION_LIMIT)
        )
        # Admission is checked synchronously on the loop thread, so the
        # split is exact -- not approximately-50 under racing clients.
        assert len(result["accepted"]) == ADMISSION_LIMIT
        assert len(result["rejected"]) == ADMISSION_SUBMITTERS - ADMISSION_LIMIT
        assert set(result["rejected"]) == {"QUEUE_FULL"}
        assert result["stored"]["total"] == ADMISSION_LIMIT
        result["store"].close()
        return {
            "accepted": len(result["accepted"]),
            "rejected": len(result["rejected"]),
        }

    benchmark.pedantic(admission, rounds=2)


def test_submit_drain_roundtrip(benchmark):
    def roundtrip():
        result = asyncio.run(
            _submit_storm(ROUNDTRIP_SUBMITTERS, queue_limit=ROUNDTRIP_SUBMITTERS)
        )
        store = result["store"]
        # The drain runs here, in-process, under the bench's ambient
        # bus: the pool simulation is what the baseline's sim-side
        # profile pins.  Identical specs + run ids 1..N make the batch
        # independent of async arrival order.
        executor = ServiceExecutor(store, workers=1, batch_machines=8)
        finished = executor.drain_once()
        assert finished == ROUNDTRIP_SUBMITTERS
        for run_id in result["accepted"]:
            status = store.run_status(run_id)
            assert status["state"] == "done", status
            assert status["detail"] == "COMPLETED"
        store.close()
        return {"finished": finished}

    benchmark.pedantic(roundtrip, rounds=2)
