"""EXP-PREEMPT -- rank preemption x checkpointing (substrate ablation).

The owner's Rank expression "enforces the machine owner's policy
regarding when and how visiting jobs may be executed" (§2.1); preemption
is its teeth, and checkpointing is what keeps those teeth from wasting
the preempted job's work.
"""

from repro.harness.experiments import run_preemption


def test_preemption_ablation(benchmark):
    result = benchmark.pedantic(run_preemption, rounds=3, iterations=1)
    print()
    print(result.table().render())
    none = result.row("no preemption")
    ckpt = result.row("preemption + checkpointing")
    raw = result.row("preemption, no checkpointing")
    # Preemption slashes the preferred user's wait.
    assert ckpt.boss_turnaround < none.boss_turnaround / 3
    assert ckpt.evictions >= 1 and raw.evictions >= 1
    # Checkpointing bounds the preempted job's wasted work.
    assert ckpt.peon_steps_executed < raw.peon_steps_executed
    assert none.evictions == 0
