"""FIG3 -- error scopes and their handling programs (paper Figure 3).

For each scope's canonical fault, verifies the error is delivered to
exactly the handler Figure 3 names, with the disposition §4 prescribes.
"""

from repro.harness.experiments import run_fig3_scopes


def test_fig3_scopes(benchmark):
    result = benchmark.pedantic(run_fig3_scopes, rounds=3, iterations=1)
    print()
    print(result.table().render())
    assert result.all_correct
