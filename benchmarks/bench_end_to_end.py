"""EXP-E2E -- implicit errors and the end-to-end layer (paper §5).

"Despite low-level error correction, implicit errors have been observed
in increasingly uncomfortable rates in networks ... The end-to-end
principle tells us that the ultimate responsibility for detecting such
errors lies with a higher level of software."
"""

from repro.harness.experiments import run_end_to_end


def test_end_to_end_layer(benchmark):
    result = benchmark.pedantic(
        run_end_to_end,
        kwargs=dict(seed=0, n_jobs=12, n_machines=4, corruption_probability=0.25),
        rounds=3, iterations=1,
    )
    print()
    print(result.table().render())
    bare = result.row("no end-to-end layer")
    layered = result.row("end-to-end layer")
    # Without the layer, corrupted outputs are delivered as success...
    assert bare.wrong_outputs_delivered > 0
    assert bare.implicit_errors_caught == 0
    # ...with it, every implicit error is caught and retried away.
    assert layered.wrong_outputs_delivered == 0
    assert layered.final_valid_outputs == 12
    assert layered.resubmits > 0
