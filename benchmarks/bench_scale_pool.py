"""EXP-SCALE-POOL -- pool-scale negotiation throughput.

Not a paper figure: the scalability check for the matchmaking kernel.
The pool sizes §2 describes (hundreds to thousands of machines, bursty
submissions far larger) make the negotiation cycle the pool's hot loop;
this benchmark drives the matchmaker directly at that scale -- ads
seeded through :meth:`Matchmaker.receive_ad`, match notifications
delivered over the simulated network to a sink schedd -- with the
adversarial ads the §5 taxonomy warns about mixed in (malformed ports,
never-matching "black hole" requirements, claimed slots, unreachable
submitters).

Cases:

- ``test_full_pool_indexed``: 10k startds x 100k jobs on the indexed
  kernel, faults on.  The committed baseline tracks its wall-time
  trajectory (EXPERIMENTS.md).
- ``test_moderate_pool_indexed`` / ``test_moderate_pool_reference_scan``:
  the same matchmaking-dominated workload at a scale the O(jobs x
  machines) reference scan can still finish; the wall-time ratio between
  the two is the indexed kernel's speedup figure.
"""

from repro.condor.classads import ClassAd
from repro.condor.daemons.config import CondorConfig
from repro.condor.daemons.matchmaker import Matchmaker
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkError

SINK_HOST = "sink"
SINK_PORT = 9600

JOB_REQUIREMENTS = (
    'TARGET.arch == "intel" && TARGET.opsys == "linux" '
    "&& TARGET.memory >= MY.imagesize && TARGET.hasjava == TRUE"
)
JOB_RANK = "TARGET.memory + 10 * TARGET.cpuspeed"
OPAQUE_REQUIREMENTS = "TARGET.memory * 4 >= TARGET.disk"  # index-opaque
MACHINE_REQUIREMENTS = "TARGET.imagesize <= MY.memory"
BLACK_HOLE_REQUIREMENTS = "TARGET.absent > 1"  # UNDEFINED: rejects everyone


def _machine_template() -> ClassAd:
    ad = ClassAd({"arch": "intel", "opsys": "linux", "startdport": 9700,
                  "state": "unclaimed"})
    ad.set_expr("requirements", MACHINE_REQUIREMENTS)
    return ad


def _job_template() -> ClassAd:
    ad = ClassAd({"universe": "java", "scheddhost": SINK_HOST,
                  "scheddport": SINK_PORT})
    ad.set_expr("requirements", JOB_REQUIREMENTS)
    ad.set_expr("rank", JOB_RANK)
    return ad


def _build_machines(n: int) -> list[tuple[str, ClassAd]]:
    template = _machine_template()
    machines = []
    for i in range(n):
        name = f"exec{i:05d}"
        ad = template.copy()
        ad["name"] = name
        ad["machine"] = name
        ad["memory"] = 64 + (i % 16) * 32
        ad["disk"] = 512 + (i % 9) * 128
        ad["cpuspeed"] = 1 + (i % 8)
        ad["hasjava"] = i % 7 != 0
        if i % 13 == 0:
            ad["state"] = "claimed"  # owner is using it; never free
        if i % 23 == 0:
            ad.set_expr("requirements", BLACK_HOLE_REQUIREMENTS)
        if i % 31 == 0:
            ad["startdport"] = "mangled-in-transit"  # must not kill a cycle
        machines.append((name, ad))
    return machines


def _build_jobs(n: int) -> list[tuple[str, ClassAd]]:
    template = _job_template()
    jobs = []
    for i in range(n):
        name = f"sub#{i:06d}"
        ad = template.copy()
        ad["jobid"] = name
        ad["owner"] = f"user{i % 8}"
        ad["imagesize"] = 16 + (i % 12) * 8
        if i % 101 == 0:
            ad.set_expr("requirements", OPAQUE_REQUIREMENTS)
        if i % 97 == 0:
            ad["scheddport"] = "not-a-port"  # malformed reply channel
        if i % 89 == 0:
            ad["scheddhost"] = "ghost"  # submitter fell off the network
        jobs.append((name, ad))
    return jobs


class _ScalePool:
    """A matchmaker, a sink schedd swallowing notifications, and a
    driver that renegotiates until the deliverable jobs drain."""

    def __init__(self, n_machines: int, n_jobs: int):
        self.sim = Simulator()
        self.net = Network(self.sim)
        self.matchmaker = Matchmaker(
            self.sim, self.net, "cm",
            # The driver below runs the cycles; the built-in loop and ad
            # expiry stay out of the way (expiry has its own unit tests).
            CondorConfig(negotiation_interval=10**9, ad_lifetime=10**9),
        )
        self.notifications = 0
        self.machines = _build_machines(n_machines)
        self.jobs = _build_jobs(n_jobs)
        self._sink = self.net.listen(SINK_HOST, SINK_PORT)
        accept = self.sim.spawn(self._accept_loop(), name="sink-accept")
        accept.defuse()

    def _accept_loop(self):
        while True:
            conn = yield from self._sink.accept()
            handler = self.sim.spawn(self._drain(conn), name="sink-drain")
            handler.defuse()

    def _drain(self, conn):
        try:
            while True:
                yield from conn.recv(timeout=60.0)
                self.notifications += 1
        except NetworkError:
            return

    def run(self, cycles: int) -> int:
        driver = self.sim.spawn(self._drive(cycles), name="scale-driver")
        driver.defuse()
        # Stop well before the parked built-in negotiation loop's first
        # tick (10**9); the driver's cycles all happen in the first few
        # thousand simulated seconds.
        self.sim.run(until=10**8)
        return self.matchmaker.matches_made

    def _drive(self, cycles: int):
        mm = self.matchmaker
        for name, ad in self.jobs:
            mm.receive_ad("job", name, ad)
        for _ in range(cycles):
            # Startds advertise between cycles (matched slots come back
            # as the claim-and-release churn of a live pool).
            for name, ad in self.machines:
                mm.receive_ad("machine", name, ad)
            yield self.sim.timeout(1.0)
            yield from mm.run_cycle()


def _eligible(pool: _ScalePool) -> int:
    """Jobs whose notifications can actually be delivered."""
    return sum(
        1 for _, ad in pool.jobs
        if ad.value("scheddhost") == SINK_HOST
        and ad.value("scheddport") == SINK_PORT
    )


def _run_indexed(n_machines: int, n_jobs: int, cycles: int) -> int:
    pool = _ScalePool(n_machines, n_jobs)
    matches = pool.run(cycles)
    assert matches == pool.notifications
    assert matches >= int(0.95 * _eligible(pool))
    return matches


def _run_reference_scan(n_machines: int, n_jobs: int, cycles: int) -> int:
    pool = _ScalePool(n_machines, n_jobs)
    # The pre-index algorithm: full scan per job.  Winner equivalence of
    # the two paths is pinned by tests/condor/test_match_index.py, so
    # both runs negotiate identically -- only the wall time differs.
    pool.matchmaker._best_machine = pool.matchmaker._best_machine_scan
    matches = pool.run(cycles)
    assert matches == pool.notifications
    assert matches >= int(0.95 * _eligible(pool))
    return matches


def test_full_pool_indexed(benchmark):
    """10k startds, 100k jobs, faults on: the headline scale case."""
    matches = benchmark.pedantic(
        _run_indexed, args=(10_000, 100_000, 16), rounds=1, iterations=1
    )
    assert matches > 90_000


def test_moderate_pool_indexed(benchmark):
    matches = benchmark.pedantic(
        _run_indexed, args=(400, 800, 3), rounds=1, iterations=1
    )
    assert matches > 700


def test_moderate_pool_reference_scan(benchmark):
    matches = benchmark.pedantic(
        _run_reference_scan, args=(400, 800, 3), rounds=1, iterations=1
    )
    assert matches > 700
