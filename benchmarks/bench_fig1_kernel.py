"""FIG1 -- the Condor kernel (paper Figure 1).

Regenerates the protocol trace of a healthy pool: advertising,
matchmaking, claiming, shadow/starter execution -- and times a full
8-job/4-machine run of the simulated kernel.
"""

from repro.harness.experiments import run_fig1_kernel


def test_fig1_kernel(benchmark):
    result = benchmark.pedantic(run_fig1_kernel, rounds=3, iterations=1)
    print()
    print(result.table().render())
    assert result.completed == result.jobs
    assert result.matches == result.jobs
    assert result.claims_granted == result.jobs
    assert result.shadows_spawned == result.jobs
