"""EXP-NFS -- the hard/soft mount dilemma (paper §5).

"a file system may either be 'hard mounted' to hide all network errors or
'soft mounted' to expose them to callers after a certain retry period
expires. ... both of these choices are unsavory, as they offer no
mechanism for a single program to choose its own failure criteria."
The third row implements exactly that missing mechanism.
"""

from repro.harness.experiments import run_nfs_mounts


def test_nfs_mount_dilemma(benchmark):
    result = benchmark.pedantic(
        run_nfs_mounts,
        kwargs=dict(outages=(5.0, 60.0, 600.0), soft_timeout=30.0, deadline=120.0),
        rounds=3, iterations=1,
    )
    print()
    print(result.table().render())
    by_key = {(r.outage, r.mode): r for r in result.rows}
    # Short outage: everyone fine.
    assert all(by_key[(5.0, m)].outcome == "completed"
               for m in ("hard", "soft", "per-op deadline"))
    # Hard hides even a 10-minute outage (the job just hangs).
    assert by_key[(600.0, "hard")].outcome == "completed"
    assert by_key[(600.0, "hard")].elapsed >= 600.0
    # Soft exposes a 1-minute outage the program could have survived.
    assert by_key[(60.0, "soft")].outcome == "error ETIMEDOUT"
    # Per-operation deadline: the crossover lands where the program asked.
    assert by_key[(60.0, "per-op deadline")].outcome == "completed"
    assert by_key[(600.0, "per-op deadline")].outcome == "error ETIMEDOUT"
