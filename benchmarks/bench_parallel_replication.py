"""Serial vs. process-parallel replication: wall clock at 1/2/4/8 workers.

The determinism contract makes per-seed runs independent, so replication
should scale with cores until process startup and the merge dominate.
This bench replicates the headline naive-vs-scoped experiment across
eight seeds at each worker count, asserts the parallel samples are
bit-identical to serial (the contract benches must never trade away),
and prints the speedup table.  The speedup assertion only applies where
the hardware can physically provide one (>= 4 CPUs).
"""

import os

import numpy as np

from repro.harness.experiments import run_naive_vs_scoped
from repro.harness.replicate import replicate
from repro.harness.report import Table

SEEDS = list(range(8))
WORKER_COUNTS = (1, 2, 4, 8)


def replication_workload(seed: int) -> dict[str, float]:
    """One seed of the headline experiment, as a replication row."""
    result = run_naive_vs_scoped(seed=seed, n_jobs=12, n_machines=4)
    return {
        "naive_incidental": float(result.naive.user_visible_incidental),
        "scoped_incidental": float(result.scoped.user_visible_incidental),
        "naive_badput": float(result.naive.badput_seconds),
        "scoped_goodput": float(result.scoped.goodput_seconds),
    }


def test_parallel_replication_speedup():
    replications = {
        workers: replicate(replication_workload, SEEDS, workers=workers)
        for workers in WORKER_COUNTS
    }
    serial = replications[1]
    # The merge contract: parallel output is bit-identical to serial.
    for workers, rep in replications.items():
        assert rep.seeds == serial.seeds, workers
        for name, values in serial.samples.items():
            assert np.array_equal(values, rep.samples[name]), (workers, name)

    table = Table(
        ["workers", "wall clock (s)", "speedup", "per-seed mean (s)"],
        title=f"parallel replication, {len(SEEDS)} seeds of naive_vs_scoped "
              f"({os.cpu_count()} CPUs)",
    )
    for workers in WORKER_COUNTS:
        rep = replications[workers]
        per_seed = sum(rep.seed_seconds) / len(rep.seed_seconds)
        table.add_row([
            workers,
            round(rep.wall_seconds, 3),
            round(serial.wall_seconds / rep.wall_seconds, 2),
            round(per_seed, 3),
        ])
    print()
    print(table.render())

    if (os.cpu_count() or 1) >= 4:
        speedup = serial.wall_seconds / replications[4].wall_seconds
        assert speedup > 1.5, f"4 workers only {speedup:.2f}x over serial"
