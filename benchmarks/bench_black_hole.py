"""EXP-BH -- black-hole machines and the §5 defenses.

"A small number of misconfigured machines in our Condor pool attracted a
continuous stream of jobs that would attempt to execute, fail, and be
returned to the schedd. ... there was continuous waste of CPU and network
capacity."  Compares no defense, the startd self-test (the paper's fix),
and schedd chronic-failure avoidance (the paper's complementary idea).
"""

from repro.harness.experiments import run_black_hole


def test_black_hole_defenses(benchmark):
    result = benchmark.pedantic(
        run_black_hole,
        kwargs=dict(seed=0, n_jobs=16, n_machines=6, n_black_holes=2),
        rounds=3, iterations=1,
    )
    print()
    print(result.table().render())
    none, selftest, avoid = (
        result.row("none"), result.row("self-test"), result.row("avoidance")
    )
    assert none.completed == selftest.completed == avoid.completed == 16
    assert none.wasted_attempts > 0  # the black holes eat work
    assert selftest.wasted_attempts == 0  # the paper's fix eliminates it
    assert avoid.wasted_attempts < none.wasted_attempts  # avoidance bounds it
    assert selftest.network_bytes < none.network_bytes
