"""FIG2 -- the Java Universe (paper Figure 2).

Regenerates the two-hop I/O path: program -> Chirp proxy -> shadow RPC ->
home file system, counting requests and bytes at each hop.
"""

from repro.harness.experiments import run_fig2_java_universe


def test_fig2_java_universe(benchmark):
    result = benchmark.pedantic(run_fig2_java_universe, rounds=3, iterations=1)
    print()
    print(result.table().render())
    assert result.completed
    assert result.output_written
    assert result.chirp_requests == result.rpc_requests
