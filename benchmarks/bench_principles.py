"""EXP-P1..P4 -- auditing the four principles (paper §3).

The auditor counts violations of each principle across identical runs of
the naive and scoped configurations.  The paper's claim: the redesign's
"necessary changes were small but powerful" -- i.e. the scoped system
violates none of the principles the naive one violates.
"""

from repro.harness.experiments import run_principles


def test_principle_violations(benchmark):
    result = benchmark.pedantic(
        run_principles, kwargs=dict(seed=0, n_jobs=24, n_machines=6),
        rounds=3, iterations=1,
    )
    print()
    print(result.table().render())
    assert result.naive[1] > 0  # implicit errors from explicit errors
    assert result.naive[4] > 0  # the generic IOException interface
    assert all(result.scoped[p] == 0 for p in (1, 2, 3, 4))
