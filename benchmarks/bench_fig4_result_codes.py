"""FIG4 -- JVM result codes (paper Figure 4).

Regenerates the paper's table exactly: seven execution details, the bare
JVM's result codes (five failures collapse onto code 1), and the
wrapper's recovered scopes (all seven distinguished).
"""

from repro.harness.experiments import run_fig4_result_codes


def test_fig4_result_codes(benchmark):
    result = benchmark.pedantic(run_fig4_result_codes, rounds=5, iterations=1)
    print()
    print(result.table().render())
    # The paper's column: 0, x, 1, 1, 1, 1, 1.
    assert result.bare_codes == [0, 5, 1, 1, 1, 1, 1]
    # "The result code is not useful, because it does not distinguish
    # error scopes" -- but the wrapper does.
    assert result.distinct_wrapper_reports == 7
