"""EXP-FAIR -- matchmaker fair-share ablation (substrate).

Not a paper figure: an ablation of the negotiation order.  A
high-throughput system serving a *community* (§2.1) must arbitrate
between users; fair share keeps a flooding user from starving a small
one.
"""

from repro.harness.experiments import run_fair_share


def test_fair_share(benchmark):
    result = benchmark.pedantic(run_fair_share, rounds=3, iterations=1)
    print()
    print(result.table().render())
    fair = result.row(True)
    unfair = result.row(False)
    # The small user gets in far earlier under fair share...
    assert fair.small_user_done_at < unfair.small_user_done_at
    assert fair.small_user_mean_turnaround < unfair.small_user_mean_turnaround
    # ...at modest cost to the flooding user.
    assert fair.flood_user_mean_turnaround >= unfair.flood_user_mean_turnaround
