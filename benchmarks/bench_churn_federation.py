"""EXP-CHURN-FED -- a federated grid under machine churn, at load.

Not a paper figure: the robustness/throughput check for the federation
layer.  A two-pool grid (small home pool, larger remote pool) takes a
bursty workload while a deterministic churn generator removes and
rejoins machines and the flock links carry the overflow.  The committed
baseline tracks the sim-side schedule (exact, hard-fails on any diff)
and the wall-time trajectory of running it.

Cases:

- ``test_federated_churn_load``: 48 jobs over 2+6 machines with churn
  on both pools; everything must complete, some of it remotely.
- ``test_backoff_vs_permanent_under_churn``: the EXP-CHURN kernel
  (black hole healed mid-run) at bench scale; the backoff defense must
  beat the permanent blacklist on makespan and re-admit the site.
"""

from repro.condor.daemons.config import CondorConfig
from repro.condor.grid import ChurnGenerator, Grid, GridConfig, GridPoolSpec
from repro.condor.job import JobState
from repro.faults import FaultInjector
from repro.harness.experiments import run_churn
from repro.harness.metrics import collect_metrics
from repro.harness.workloads import WorkloadSpec, make_workload
from repro.sim.rng import RngRegistry


def _federated_churn_load(seed: int = 0, n_jobs: int = 48):
    condor = CondorConfig(error_mode="scoped", flock_after=30.0,
                          schedd_avoidance=True)
    grid = Grid(GridConfig(
        pools=(GridPoolSpec("a", n_machines=2),
               GridPoolSpec("b", n_machines=6)),
        seed=seed,
        condor=condor,
    ))
    injector = FaultInjector(grid)
    churn = ChurnGenerator(
        grid, grid.rngs.stream("bench-churn"),
        mean_interval=90.0, mean_downtime=60.0, min_alive=3,
    )
    rngs = RngRegistry(seed)
    jobs = make_workload(
        WorkloadSpec(n_jobs=n_jobs, io_fraction=0.0, exception_fraction=0.0,
                     exit_code_fraction=0.0, mean_work=45.0),
        rngs.stream("bench-flock"),
    )
    arrivals = rngs.stream("bench-arrivals")
    when = 0.0
    for job in jobs:
        grid.submit_at(job, when)
        when += arrivals.expovariate(1.0 / 5.0)
    grid.run_until_done(max_time=500_000, expected_jobs=len(jobs))
    return grid, churn, jobs, collect_metrics(grid, jobs, injector)


def test_federated_churn_load(benchmark):
    grid, churn, jobs, metrics = benchmark.pedantic(
        _federated_churn_load, rounds=3, iterations=1,
    )
    assert metrics.completed == len(jobs)
    assert churn.leaves > 0 and churn.joins > 0
    assert grid.schedd.jobs_flocked > 0
    remote = sum(
        1 for job in jobs
        if job.state is JobState.COMPLETED and job.attempts[-1].site.startswith("b-")
    )
    assert remote > 0


def test_backoff_vs_permanent_under_churn(benchmark):
    result = benchmark.pedantic(
        run_churn,
        kwargs=dict(seed=0, n_jobs=24, n_machines=4, heal_at=200.0),
        rounds=3, iterations=1,
    )
    print()
    print(result.table().render())
    none, permanent, backoff = (
        result.row("none"), result.row("permanent"), result.row("backoff")
    )
    assert none.completed == permanent.completed == backoff.completed == 24
    assert backoff.makespan < permanent.makespan < none.makespan
    assert backoff.readmitted and not permanent.readmitted
