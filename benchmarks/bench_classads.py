"""EXP-CLASSADS -- matchmaking-substrate throughput.

Not a paper figure: a substrate check ensuring the ClassAd engine scales
for the experiments above, and an ablation point for the matchmaker's
negotiation-cycle cost vs pool size.
"""

import pytest

from repro.condor.classads import ClassAd, parse, rank, symmetric_match


def _job_ad():
    job = ClassAd({"imagesize": 28, "owner": "thain", "universe": "java"})
    job.set_expr(
        "requirements",
        'TARGET.arch == "intel" && TARGET.opsys == "linux" '
        "&& TARGET.memory >= MY.imagesize && TARGET.hasjava == TRUE",
    )
    job.set_expr("rank", "TARGET.memory + 10 * TARGET.cpuspeed")
    return job


def _machine_ad(i):
    machine = ClassAd(
        {
            "machine": f"exec{i:04d}",
            "arch": "intel",
            "opsys": "linux",
            "memory": 64 + (i % 16) * 32,
            "cpuspeed": 0.5 + (i % 8) * 0.25,
            "hasjava": (i % 5 != 0),
        }
    )
    machine.set_expr("requirements", "TARGET.imagesize <= MY.memory")
    return machine


def test_parse_throughput(benchmark):
    source = 'TARGET.arch == "intel" && TARGET.memory >= MY.imagesize && (x + 3) * 2 > 10'
    benchmark(parse, source)


def test_match_throughput(benchmark):
    job, machine = _job_ad(), _machine_ad(1)
    result = benchmark(symmetric_match, job, machine)
    assert result is True


@pytest.mark.parametrize("pool_size", [50, 200, 800])
def test_negotiation_sweep(benchmark, pool_size):
    """Full pass: match + rank one job ad against *pool_size* machines."""
    job = _job_ad()
    machines = [_machine_ad(i) for i in range(pool_size)]

    def negotiate():
        best, best_rank = None, float("-inf")
        for machine in machines:
            if symmetric_match(job, machine):
                r = rank(job, machine)
                if r > best_rank:
                    best, best_rank = machine, r
        return best

    best = benchmark(negotiate)
    assert best is not None
