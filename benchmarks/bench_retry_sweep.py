"""EXP-RETRY -- the schedd's retry budget (policy ablation).

"Anything in between causes it to log the error and then attempt to
execute the program at a new site" (§4) -- but how many attempts?  The
sweep finds the knee: enough retries to route around every broken
machine, after which more budget buys nothing.
"""

from repro.harness.experiments import run_retry_sweep


def test_retry_budget_sweep(benchmark):
    result = benchmark.pedantic(run_retry_sweep, rounds=3, iterations=1)
    print()
    print(result.table().render())
    # Budget 0 is the naive disposition (first env error -> user).
    assert result.row(0).held > 0
    # Completions are monotone in budget...
    completions = [row.completed for row in result.rows]
    assert completions == sorted(completions)
    # ...and saturate at full completion once the budget clears the knee.
    assert result.rows[-1].completed == result.n_jobs
    assert result.rows[-1].held == 0