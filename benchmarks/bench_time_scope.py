"""EXP-SCOPE-TIME -- time-dependent scope resolution (paper §5).

"A failure to communicate for one second may be of network scope, but a
failure to communicate for a year likely has larger scope."  The
escalation ladder assigns process scope to blips and wider scopes to
persistent outages.
"""

from repro.harness.experiments import run_time_scope


def test_time_scope_escalation(benchmark):
    result = benchmark.pedantic(run_time_scope, rounds=5, iterations=1)
    print()
    print(result.table().render())
    assert result.accuracy == 1.0
    # The decision delay for persistent outages equals the threshold.
    persistent = [r for r in result.rows if r.assigned == "remote-resource"]
    assert persistent
    assert all(r.decided_after >= result.threshold for r in persistent)
